//! Metrics collected by a simulation run — everything the paper's
//! tables and figures report.

use nw_sim::stats::{CycleBreakdown, Histogram, Tally};
use nw_sim::Time;

/// All statistics produced by one application run.
///
/// `PartialEq` compares every field — histograms, tallies, occupancy
/// samples and all — so `assert_eq!` on two `RunMetrics` is the
/// bit-identity check the parallel-sweep determinism tests rely on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Application name.
    pub app: String,
    /// Machine kind as a string ("standard" / "nwcache").
    pub machine: String,
    /// Prefetch mode as a string ("optimal" / "naive").
    pub prefetch: String,

    /// Total execution time (max over processors).
    pub exec_time: Time,
    /// Per-processor cycle breakdown (Figures 3/4 categories).
    pub breakdown: Vec<CycleBreakdown>,

    /// Swap-out time: eviction decision to frame reuse (Tables 3/4).
    pub swap_out_time: Tally,
    /// Swap-out latency distribution (log2 buckets).
    pub swap_out_hist: Histogram,
    /// Page-fault latency distribution across all fault sources.
    pub fault_hist: Histogram,
    /// Ring occupancy over time: (pcycles, pages stored) samples.
    pub ring_occupancy: Vec<(Time, u64)>,
    /// Pages per disk write operation (Tables 5/6).
    pub write_combining: Tally,
    /// Page faults served from the optical ring (victim cache hits).
    pub ring_hits: u64,
    /// Page faults served from disk (controller cache or media).
    pub ring_misses: u64,
    /// Fault latency when the disk controller cache hit (Table 8).
    pub fault_latency_disk_hit: Tally,
    /// Fault latency when the disk had to be accessed.
    pub fault_latency_disk_miss: Tally,
    /// Fault latency for ring (victim) hits.
    pub fault_latency_ring: Tally,

    /// Total page faults taken.
    pub page_faults: u64,
    /// Total page swap-outs started.
    pub swap_outs: u64,
    /// Swap-outs NACKed at least once (standard machine).
    pub swap_nacks: u64,
    /// TLB shootdowns performed.
    pub shootdowns: u64,
    /// Bytes carried by the mesh interconnect.
    pub mesh_bytes: u64,
    /// Messages on the mesh.
    pub mesh_messages: u64,
    /// Mean mesh link utilization over the run.
    pub mesh_utilization: f64,
    /// Pages stored on the ring at peak (NWCache machine).
    pub ring_peak_pages: usize,
    /// Processor cache (L2) miss ratio across all processors.
    pub l2_miss_ratio: f64,

    /// Injected disk media errors that forced a read retry.
    pub disk_media_errors: u64,
    /// Injected stuck disk requests recovered by the timeout path.
    pub disk_stuck_timeouts: u64,
    /// Injected mesh control-message drops.
    pub mesh_dropped: u64,
    /// Injected mesh control-message corruptions (detected, discarded).
    pub mesh_corrupted: u64,
    /// Pages destroyed by ring channel failures (all re-issued).
    pub ring_pages_lost: u64,
    /// Swap-out retries (ring-loss re-issues plus timeout re-sends).
    pub swap_retries: u64,
    /// Ring channels marked dead by the end of the run.
    pub dead_channels: u64,
    /// Swap-outs diverted to the standard path because the preferred
    /// ring channel was dead.
    pub degraded_ring_swaps: u64,

    // Prefetch-policy counters (summed over disk controllers; the
    // speculation counters stay zero outside the adaptive policy).
    // Deliberately NOT part of `RunSummary::to_json` — the summary
    // schema is frozen by the golden suites.
    /// Demand page reads served by a controller cache (main cache or
    /// speculative side cache, late speculative hits included).
    pub disk_read_hits: u64,
    /// Demand page reads that paid a mechanical disk access.
    pub disk_read_misses: u64,
    /// Speculative read hints committed by the policy (mesh-dropped
    /// hints included).
    pub prefetch_spec_issued: u64,
    /// Demand reads served by a speculative side cache.
    pub prefetch_spec_hits: u64,
    /// Speculative hits whose read was still in flight on demand
    /// arrival (the fault waited out the remaining transfer).
    pub prefetch_spec_late: u64,
    /// Speculative reads never consumed (evicted or superseded).
    pub prefetch_spec_wasted: u64,
    /// Hints cancelled before reaching the disk arm (demand-miss
    /// collisions, stale predictions, superseding writes).
    pub prefetch_spec_canceled: u64,
    /// Highest per-node in-flight speculation ever observed — bounded
    /// by the policy cap (asserted by the conformance suite).
    pub prefetch_inflight_peak: u64,
}

impl RunMetrics {
    /// Approximate p-th percentile of swap-out latency.
    pub fn swap_out_percentile(&self, p: f64) -> u64 {
        self.swap_out_hist.percentile(p)
    }

    /// Approximate p-th percentile of page-fault latency.
    pub fn fault_percentile(&self, p: f64) -> u64 {
        self.fault_hist.percentile(p)
    }

    /// NWCache read hit rate in percent (Table 7).
    pub fn ring_hit_rate(&self) -> f64 {
        let total = self.ring_hits + self.ring_misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.ring_hits as f64 / total as f64
        }
    }

    /// Aggregate breakdown summed over processors.
    pub fn total_breakdown(&self) -> CycleBreakdown {
        let mut acc = CycleBreakdown::default();
        for b in &self.breakdown {
            acc.accumulate(b);
        }
        acc
    }

    /// Mean per-processor breakdown normalized by `denom` (used to
    /// draw the Figure 3/4 stacked bars: `denom` is the *standard*
    /// machine's execution time).
    ///
    /// Computed entirely in `f64`: dividing the summed cycle counts by
    /// the processor count in integer arithmetic truncates, silently
    /// dropping up to `n − 1` cycles per component whenever the sums
    /// are not divisible by the processor count — for a small category
    /// like `tlb` on a 7-processor run that can zero the bar entirely.
    pub fn normalized_breakdown(&self, denom: Time) -> [f64; 5] {
        let n = self.breakdown.len().max(1) as f64;
        let acc = self.total_breakdown();
        let d = (denom.max(1) as f64) * n;
        [
            acc.no_free as f64 / d,
            acc.transit as f64 / d,
            acc.fault as f64 / d,
            acc.tlb as f64 / d,
            acc.other as f64 / d,
        ]
    }

    /// Execution-time improvement of `self` over a baseline run, in
    /// percent (positive = `self` is faster).
    pub fn improvement_over(&self, baseline: &RunMetrics) -> f64 {
        if baseline.exec_time == 0 {
            return 0.0;
        }
        100.0 * (baseline.exec_time as f64 - self.exec_time as f64)
            / baseline.exec_time as f64
    }

    /// A flat, serializable summary of this run (for JSON export and
    /// downstream analysis).
    pub fn summary(&self) -> RunSummary {
        let agg = self.total_breakdown();
        RunSummary {
            app: self.app.clone(),
            machine: self.machine.clone(),
            prefetch: self.prefetch.clone(),
            exec_time: self.exec_time,
            page_faults: self.page_faults,
            swap_outs: self.swap_outs,
            swap_nacks: self.swap_nacks,
            swap_out_mean: self.swap_out_time.mean(),
            swap_out_max: self.swap_out_time.max().unwrap_or(0),
            swap_out_p99: self.swap_out_percentile(99.0),
            fault_p99: self.fault_percentile(99.0),
            write_combining_mean: self.write_combining.mean(),
            ring_hits: self.ring_hits,
            ring_hit_rate: self.ring_hit_rate(),
            fault_disk_hit_mean: self.fault_latency_disk_hit.mean(),
            fault_disk_miss_mean: self.fault_latency_disk_miss.mean(),
            fault_ring_mean: self.fault_latency_ring.mean(),
            shootdowns: self.shootdowns,
            mesh_bytes: self.mesh_bytes,
            mesh_messages: self.mesh_messages,
            mesh_utilization: self.mesh_utilization,
            ring_peak_pages: self.ring_peak_pages,
            l2_miss_ratio: self.l2_miss_ratio,
            no_free_cycles: agg.no_free,
            transit_cycles: agg.transit,
            fault_cycles: agg.fault,
            tlb_cycles: agg.tlb,
            other_cycles: agg.other,
            disk_media_errors: self.disk_media_errors,
            disk_stuck_timeouts: self.disk_stuck_timeouts,
            mesh_dropped: self.mesh_dropped,
            mesh_corrupted: self.mesh_corrupted,
            ring_pages_lost: self.ring_pages_lost,
            swap_retries: self.swap_retries,
            dead_channels: self.dead_channels,
            degraded_ring_swaps: self.degraded_ring_swaps,
        }
    }
}

/// Flat serializable view of a run (see [`RunMetrics::summary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Application name.
    pub app: String,
    /// Machine kind.
    pub machine: String,
    /// Prefetch mode.
    pub prefetch: String,
    /// Total execution time in pcycles.
    pub exec_time: u64,
    /// Page faults taken.
    pub page_faults: u64,
    /// Swap-outs started.
    pub swap_outs: u64,
    /// Swap-outs NACKed at least once.
    pub swap_nacks: u64,
    /// Mean swap-out time (pcycles).
    pub swap_out_mean: f64,
    /// Worst swap-out time (pcycles).
    pub swap_out_max: u64,
    /// 99th-percentile swap-out time (pcycles, log2-bucket estimate).
    pub swap_out_p99: u64,
    /// 99th-percentile page-fault latency (pcycles).
    pub fault_p99: u64,
    /// Mean pages per disk write operation.
    pub write_combining_mean: f64,
    /// Faults served from the ring.
    pub ring_hits: u64,
    /// Ring hit rate (%).
    pub ring_hit_rate: f64,
    /// Mean fault latency for disk-cache hits.
    pub fault_disk_hit_mean: f64,
    /// Mean fault latency for disk-cache misses.
    pub fault_disk_miss_mean: f64,
    /// Mean fault latency for ring hits.
    pub fault_ring_mean: f64,
    /// TLB shootdowns.
    pub shootdowns: u64,
    /// Bytes carried by the mesh.
    pub mesh_bytes: u64,
    /// Mesh message count.
    pub mesh_messages: u64,
    /// Mean mesh link utilization.
    pub mesh_utilization: f64,
    /// Peak pages stored on the ring.
    pub ring_peak_pages: usize,
    /// L2 miss ratio across processors.
    pub l2_miss_ratio: f64,
    /// Aggregate NoFree cycles (all processors).
    pub no_free_cycles: u64,
    /// Aggregate Transit cycles.
    pub transit_cycles: u64,
    /// Aggregate Fault cycles.
    pub fault_cycles: u64,
    /// Aggregate TLB cycles.
    pub tlb_cycles: u64,
    /// Aggregate Other cycles.
    pub other_cycles: u64,
    /// Injected disk media errors.
    pub disk_media_errors: u64,
    /// Injected stuck disk requests recovered by timeout.
    pub disk_stuck_timeouts: u64,
    /// Injected mesh message drops.
    pub mesh_dropped: u64,
    /// Injected mesh message corruptions.
    pub mesh_corrupted: u64,
    /// Pages destroyed by ring channel failures.
    pub ring_pages_lost: u64,
    /// Swap-out retries.
    pub swap_retries: u64,
    /// Ring channels dead at end of run.
    pub dead_channels: u64,
    /// Swap-outs diverted off a dead ring channel.
    pub degraded_ring_swaps: u64,
}

/// Escape a string for embedding in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/Infinity; map
/// them to null so the document stays parseable).
pub(crate) fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

impl RunSummary {
    /// Serialize as a flat JSON object. Hand-rolled so the workspace
    /// builds with no external dependencies; field order matches the
    /// struct declaration and is stable across runs.
    pub fn to_json(&self) -> String {
        let mut f = Vec::with_capacity(33);
        f.push(format!("\"app\":\"{}\"", json_escape(&self.app)));
        f.push(format!("\"machine\":\"{}\"", json_escape(&self.machine)));
        f.push(format!("\"prefetch\":\"{}\"", json_escape(&self.prefetch)));
        f.push(format!("\"exec_time\":{}", self.exec_time));
        f.push(format!("\"page_faults\":{}", self.page_faults));
        f.push(format!("\"swap_outs\":{}", self.swap_outs));
        f.push(format!("\"swap_nacks\":{}", self.swap_nacks));
        f.push(format!("\"swap_out_mean\":{}", json_f64(self.swap_out_mean)));
        f.push(format!("\"swap_out_max\":{}", self.swap_out_max));
        f.push(format!("\"swap_out_p99\":{}", self.swap_out_p99));
        f.push(format!("\"fault_p99\":{}", self.fault_p99));
        f.push(format!(
            "\"write_combining_mean\":{}",
            json_f64(self.write_combining_mean)
        ));
        f.push(format!("\"ring_hits\":{}", self.ring_hits));
        f.push(format!("\"ring_hit_rate\":{}", json_f64(self.ring_hit_rate)));
        f.push(format!(
            "\"fault_disk_hit_mean\":{}",
            json_f64(self.fault_disk_hit_mean)
        ));
        f.push(format!(
            "\"fault_disk_miss_mean\":{}",
            json_f64(self.fault_disk_miss_mean)
        ));
        f.push(format!(
            "\"fault_ring_mean\":{}",
            json_f64(self.fault_ring_mean)
        ));
        f.push(format!("\"shootdowns\":{}", self.shootdowns));
        f.push(format!("\"mesh_bytes\":{}", self.mesh_bytes));
        f.push(format!("\"mesh_messages\":{}", self.mesh_messages));
        f.push(format!(
            "\"mesh_utilization\":{}",
            json_f64(self.mesh_utilization)
        ));
        f.push(format!("\"ring_peak_pages\":{}", self.ring_peak_pages));
        f.push(format!("\"l2_miss_ratio\":{}", json_f64(self.l2_miss_ratio)));
        f.push(format!("\"no_free_cycles\":{}", self.no_free_cycles));
        f.push(format!("\"transit_cycles\":{}", self.transit_cycles));
        f.push(format!("\"fault_cycles\":{}", self.fault_cycles));
        f.push(format!("\"tlb_cycles\":{}", self.tlb_cycles));
        f.push(format!("\"other_cycles\":{}", self.other_cycles));
        f.push(format!("\"disk_media_errors\":{}", self.disk_media_errors));
        f.push(format!(
            "\"disk_stuck_timeouts\":{}",
            self.disk_stuck_timeouts
        ));
        f.push(format!("\"mesh_dropped\":{}", self.mesh_dropped));
        f.push(format!("\"mesh_corrupted\":{}", self.mesh_corrupted));
        f.push(format!("\"ring_pages_lost\":{}", self.ring_pages_lost));
        f.push(format!("\"swap_retries\":{}", self.swap_retries));
        f.push(format!("\"dead_channels\":{}", self.dead_channels));
        f.push(format!(
            "\"degraded_ring_swaps\":{}",
            self.degraded_ring_swaps
        ));
        format!("{{{}}}", f.join(","))
    }
}

/// Serialize a batch of summaries as a pretty-printed JSON array (one
/// object per line — the shape the `--json` exports write to disk).
pub fn summaries_to_json(summaries: &[RunSummary]) -> String {
    let mut out = String::from("[\n");
    for (i, s) in summaries.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&s.to_json());
        if i + 1 < summaries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_percent() {
        let m = RunMetrics {
            ring_hits: 25,
            ring_misses: 75,
            ..Default::default()
        };
        assert!((m.ring_hit_rate() - 25.0).abs() < 1e-12);
        assert_eq!(RunMetrics::default().ring_hit_rate(), 0.0);
    }

    #[test]
    fn improvement_math() {
        let fast = RunMetrics {
            exec_time: 60,
            ..Default::default()
        };
        let slow = RunMetrics {
            exec_time: 100,
            ..Default::default()
        };
        assert!((fast.improvement_over(&slow) - 40.0).abs() < 1e-12);
        assert!((slow.improvement_over(&fast) + 66.666).abs() < 0.01);
    }

    #[test]
    fn breakdown_aggregation() {
        let m = RunMetrics {
            breakdown: vec![
                CycleBreakdown {
                    no_free: 10,
                    transit: 0,
                    fault: 20,
                    tlb: 5,
                    other: 65,
                };
                4
            ],
            ..Default::default()
        };
        let total = m.total_breakdown();
        assert_eq!(total.total(), 400);
        let norm = m.normalized_breakdown(100);
        assert!((norm.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((norm[0] - 0.10).abs() < 1e-9);
    }

    #[test]
    fn normalized_breakdown_non_divisible_proc_count() {
        // Three processors whose per-component sums are NOT divisible
        // by 3. The old integer path computed `acc.tlb / 3 = 2/3 = 0`
        // and reported a zero TLB bar; the f64 path keeps the cycles.
        let m = RunMetrics {
            breakdown: vec![
                CycleBreakdown {
                    no_free: 1,
                    transit: 0,
                    fault: 0,
                    tlb: 1,
                    other: 98,
                },
                CycleBreakdown {
                    no_free: 0,
                    transit: 1,
                    fault: 1,
                    tlb: 1,
                    other: 97,
                },
                CycleBreakdown {
                    no_free: 1,
                    transit: 1,
                    fault: 1,
                    tlb: 0,
                    other: 97,
                },
            ],
            ..Default::default()
        };
        // Sums: no_free 2, transit 2, fault 2, tlb 2, other 292; mean
        // per processor = sum/3; normalize by denom 100.
        let norm = m.normalized_breakdown(100);
        for (i, &v) in norm.iter().enumerate().take(4) {
            assert!(
                (v - 2.0 / 300.0).abs() < 1e-12,
                "component {i}: {v} != {}",
                2.0 / 300.0
            );
            assert!(v > 0.0, "component {i} truncated to zero");
        }
        assert!((norm[4] - 292.0 / 300.0).abs() < 1e-12);
        // The bars must account for every simulated cycle: total is
        // 100 cycles/processor, so against denom=100 they sum to 1.
        assert!((norm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
