//! Metrics collected by a simulation run — everything the paper's
//! tables and figures report.

use nw_sim::stats::{CycleBreakdown, Histogram, Tally};
use nw_sim::Time;
use serde::Serialize;

/// All statistics produced by one application run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Application name.
    pub app: String,
    /// Machine kind as a string ("standard" / "nwcache").
    pub machine: String,
    /// Prefetch mode as a string ("optimal" / "naive").
    pub prefetch: String,

    /// Total execution time (max over processors).
    pub exec_time: Time,
    /// Per-processor cycle breakdown (Figures 3/4 categories).
    pub breakdown: Vec<CycleBreakdown>,

    /// Swap-out time: eviction decision to frame reuse (Tables 3/4).
    pub swap_out_time: Tally,
    /// Swap-out latency distribution (log2 buckets).
    pub swap_out_hist: Histogram,
    /// Page-fault latency distribution across all fault sources.
    pub fault_hist: Histogram,
    /// Ring occupancy over time: (pcycles, pages stored) samples.
    pub ring_occupancy: Vec<(Time, u64)>,
    /// Pages per disk write operation (Tables 5/6).
    pub write_combining: Tally,
    /// Page faults served from the optical ring (victim cache hits).
    pub ring_hits: u64,
    /// Page faults served from disk (controller cache or media).
    pub ring_misses: u64,
    /// Fault latency when the disk controller cache hit (Table 8).
    pub fault_latency_disk_hit: Tally,
    /// Fault latency when the disk had to be accessed.
    pub fault_latency_disk_miss: Tally,
    /// Fault latency for ring (victim) hits.
    pub fault_latency_ring: Tally,

    /// Total page faults taken.
    pub page_faults: u64,
    /// Total page swap-outs started.
    pub swap_outs: u64,
    /// Swap-outs NACKed at least once (standard machine).
    pub swap_nacks: u64,
    /// TLB shootdowns performed.
    pub shootdowns: u64,
    /// Bytes carried by the mesh interconnect.
    pub mesh_bytes: u64,
    /// Messages on the mesh.
    pub mesh_messages: u64,
    /// Mean mesh link utilization over the run.
    pub mesh_utilization: f64,
    /// Pages stored on the ring at peak (NWCache machine).
    pub ring_peak_pages: usize,
    /// Processor cache (L2) miss ratio across all processors.
    pub l2_miss_ratio: f64,
}

impl RunMetrics {
    /// Approximate p-th percentile of swap-out latency.
    pub fn swap_out_percentile(&self, p: f64) -> u64 {
        self.swap_out_hist.percentile(p)
    }

    /// Approximate p-th percentile of page-fault latency.
    pub fn fault_percentile(&self, p: f64) -> u64 {
        self.fault_hist.percentile(p)
    }

    /// NWCache read hit rate in percent (Table 7).
    pub fn ring_hit_rate(&self) -> f64 {
        let total = self.ring_hits + self.ring_misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.ring_hits as f64 / total as f64
        }
    }

    /// Aggregate breakdown summed over processors.
    pub fn total_breakdown(&self) -> CycleBreakdown {
        let mut acc = CycleBreakdown::default();
        for b in &self.breakdown {
            acc.accumulate(b);
        }
        acc
    }

    /// Mean per-processor breakdown normalized by `denom` (used to
    /// draw the Figure 3/4 stacked bars: `denom` is the *standard*
    /// machine's execution time).
    pub fn normalized_breakdown(&self, denom: Time) -> [f64; 5] {
        let n = self.breakdown.len().max(1) as u64;
        let mut acc = self.total_breakdown();
        acc.no_free /= n;
        acc.transit /= n;
        acc.fault /= n;
        acc.tlb /= n;
        acc.other /= n;
        acc.normalized(denom)
    }

    /// Execution-time improvement of `self` over a baseline run, in
    /// percent (positive = `self` is faster).
    pub fn improvement_over(&self, baseline: &RunMetrics) -> f64 {
        if baseline.exec_time == 0 {
            return 0.0;
        }
        100.0 * (baseline.exec_time as f64 - self.exec_time as f64)
            / baseline.exec_time as f64
    }

    /// A flat, serializable summary of this run (for JSON export and
    /// downstream analysis).
    pub fn summary(&self) -> RunSummary {
        let agg = self.total_breakdown();
        RunSummary {
            app: self.app.clone(),
            machine: self.machine.clone(),
            prefetch: self.prefetch.clone(),
            exec_time: self.exec_time,
            page_faults: self.page_faults,
            swap_outs: self.swap_outs,
            swap_nacks: self.swap_nacks,
            swap_out_mean: self.swap_out_time.mean(),
            swap_out_max: self.swap_out_time.max().unwrap_or(0),
            swap_out_p99: self.swap_out_percentile(99.0),
            fault_p99: self.fault_percentile(99.0),
            write_combining_mean: self.write_combining.mean(),
            ring_hits: self.ring_hits,
            ring_hit_rate: self.ring_hit_rate(),
            fault_disk_hit_mean: self.fault_latency_disk_hit.mean(),
            fault_disk_miss_mean: self.fault_latency_disk_miss.mean(),
            fault_ring_mean: self.fault_latency_ring.mean(),
            shootdowns: self.shootdowns,
            mesh_bytes: self.mesh_bytes,
            mesh_messages: self.mesh_messages,
            mesh_utilization: self.mesh_utilization,
            ring_peak_pages: self.ring_peak_pages,
            l2_miss_ratio: self.l2_miss_ratio,
            no_free_cycles: agg.no_free,
            transit_cycles: agg.transit,
            fault_cycles: agg.fault,
            tlb_cycles: agg.tlb,
            other_cycles: agg.other,
        }
    }
}

/// Flat serializable view of a run (see [`RunMetrics::summary`]).
#[derive(Debug, Clone, Serialize)]
pub struct RunSummary {
    /// Application name.
    pub app: String,
    /// Machine kind.
    pub machine: String,
    /// Prefetch mode.
    pub prefetch: String,
    /// Total execution time in pcycles.
    pub exec_time: u64,
    /// Page faults taken.
    pub page_faults: u64,
    /// Swap-outs started.
    pub swap_outs: u64,
    /// Swap-outs NACKed at least once.
    pub swap_nacks: u64,
    /// Mean swap-out time (pcycles).
    pub swap_out_mean: f64,
    /// Worst swap-out time (pcycles).
    pub swap_out_max: u64,
    /// 99th-percentile swap-out time (pcycles, log2-bucket estimate).
    pub swap_out_p99: u64,
    /// 99th-percentile page-fault latency (pcycles).
    pub fault_p99: u64,
    /// Mean pages per disk write operation.
    pub write_combining_mean: f64,
    /// Faults served from the ring.
    pub ring_hits: u64,
    /// Ring hit rate (%).
    pub ring_hit_rate: f64,
    /// Mean fault latency for disk-cache hits.
    pub fault_disk_hit_mean: f64,
    /// Mean fault latency for disk-cache misses.
    pub fault_disk_miss_mean: f64,
    /// Mean fault latency for ring hits.
    pub fault_ring_mean: f64,
    /// TLB shootdowns.
    pub shootdowns: u64,
    /// Bytes carried by the mesh.
    pub mesh_bytes: u64,
    /// Mesh message count.
    pub mesh_messages: u64,
    /// Mean mesh link utilization.
    pub mesh_utilization: f64,
    /// Peak pages stored on the ring.
    pub ring_peak_pages: usize,
    /// L2 miss ratio across processors.
    pub l2_miss_ratio: f64,
    /// Aggregate NoFree cycles (all processors).
    pub no_free_cycles: u64,
    /// Aggregate Transit cycles.
    pub transit_cycles: u64,
    /// Aggregate Fault cycles.
    pub fault_cycles: u64,
    /// Aggregate TLB cycles.
    pub tlb_cycles: u64,
    /// Aggregate Other cycles.
    pub other_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_percent() {
        let m = RunMetrics {
            ring_hits: 25,
            ring_misses: 75,
            ..Default::default()
        };
        assert!((m.ring_hit_rate() - 25.0).abs() < 1e-12);
        assert_eq!(RunMetrics::default().ring_hit_rate(), 0.0);
    }

    #[test]
    fn improvement_math() {
        let fast = RunMetrics {
            exec_time: 60,
            ..Default::default()
        };
        let slow = RunMetrics {
            exec_time: 100,
            ..Default::default()
        };
        assert!((fast.improvement_over(&slow) - 40.0).abs() < 1e-12);
        assert!((slow.improvement_over(&fast) + 66.666).abs() < 0.01);
    }

    #[test]
    fn breakdown_aggregation() {
        let m = RunMetrics {
            breakdown: vec![
                CycleBreakdown {
                    no_free: 10,
                    transit: 0,
                    fault: 20,
                    tlb: 5,
                    other: 65,
                };
                4
            ],
            ..Default::default()
        };
        let total = m.total_breakdown();
        assert_eq!(total.total(), 400);
        let norm = m.normalized_breakdown(100);
        assert!((norm.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((norm[0] - 0.10).abs() < 1e-9);
    }
}
