//! Pluggable prefetch policies and the adaptive online pattern
//! detector.
//!
//! The paper evaluates two prefetching *extremes* at the disk
//! controller (§3.1): *optimal* (every read hits the controller
//! cache) and *naive* (sequential span filling on a miss), expecting
//! "realistic and sophisticated prefetching techniques to lie between
//! these two extremes". This module turns the prefetch mode into a
//! first-class policy object:
//!
//! * [`PrefetchPolicy`] — the machine-facing trait. Each policy maps
//!   to a controller-level [`nw_disk::PrefetchPolicy`] and may in
//!   addition observe the per-node demand-miss stream and issue
//!   speculative read hints through the machine's mesh + disk paths.
//! * [`OptimalPolicy`] / [`NaivePolicy`] / [`WindowPolicy`] — the
//!   pre-existing modes, refactored behind the trait. Their behaviour
//!   is pinned bit-identically by the policy-conformance golden suite
//!   (`tests/tests/prefetch.rs`): they drive the controller exactly
//!   as the hard-wired modes did and issue no hints of their own.
//! * [`AdaptivePolicy`] — the new middle ground. A per-node
//!   [`Detector`] classifies the recent miss stream as sequential,
//!   strided, temporal, or random over a sliding window and predicts
//!   the next few pages. The machine turns accepted predictions into
//!   bounded, cancellable speculative reads: each hint crosses the
//!   mesh as a control message, queues at the target controller, and
//!   is serviced only when the disk arm is idle
//!   ([`nw_disk::DiskController::spec_hint`]).
//!
//! Determinism: classification is a pure function of the observed
//! stream; the per-node [`Pcg32`] (stream `0xADA0 + node`, seeded
//! from the workload seed) is consulted *only* to break ties between
//! equally-frequent candidates under the temporal pattern, so a run
//! remains a pure function of `(MachineConfig, workload)`.

use crate::config::{MachineConfig, PrefetchMode};
use crate::vm::Vpn;
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use nw_sim::Pcg32;
use std::collections::{BTreeMap, VecDeque};

/// Fewest observations before the detector commits to a pattern;
/// below this every window classifies as [`Pattern::Random`].
pub const MIN_OBSERVATIONS: usize = 3;

/// The per-node in-flight speculation cap implied by a detector
/// window: half the window, clamped to `[2, 8]`.
pub fn speculation_cap(window: usize) -> usize {
    (window / 2).clamp(2, 8)
}

/// Access pattern classified from a node's recent demand-miss stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Consecutive page numbers (delta +1 dominates).
    Sequential,
    /// A dominant constant non-unit delta.
    Strided(i64),
    /// Re-references of a small recurring page set.
    Temporal,
    /// No exploitable structure (or not enough evidence yet).
    Random,
}

/// Classify a miss-stream window. Pure: equal windows always produce
/// equal patterns, regardless of any RNG state.
///
/// Thresholds: with at least [`MIN_OBSERVATIONS`] samples, ≥70% of
/// deltas equal to +1 is [`Pattern::Sequential`]; ≥70% sharing any
/// other non-zero delta is [`Pattern::Strided`]; at most half the
/// window being distinct pages is [`Pattern::Temporal`]; anything
/// else is [`Pattern::Random`].
pub fn classify(window: &[Vpn]) -> Pattern {
    if window.len() < MIN_OBSERVATIONS {
        return Pattern::Random;
    }
    let deltas: Vec<i64> = window
        .windows(2)
        .map(|w| w[1] as i64 - w[0] as i64)
        .collect();
    let need = (deltas.len() * 7).div_ceil(10); // ceil(70%)
    let seq = deltas.iter().filter(|&&d| d == 1).count();
    if seq >= need {
        return Pattern::Sequential;
    }
    // Dominant non-unit, non-zero stride: count per distinct delta.
    let mut best: Option<(i64, usize)> = None;
    for &d in &deltas {
        if d == 0 || d == 1 {
            continue;
        }
        let n = deltas.iter().filter(|&&x| x == d).count();
        // Smallest delta wins ties so the answer is input-determined.
        if best.is_none_or(|(bd, bn)| n > bn || (n == bn && d < bd)) {
            best = Some((d, n));
        }
    }
    if let Some((d, n)) = best {
        if n >= need {
            return Pattern::Strided(d);
        }
    }
    let mut distinct: Vec<Vpn> = window.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() * 2 <= window.len() {
        return Pattern::Temporal;
    }
    Pattern::Random
}

/// One node's online pattern detector: a sliding window of the
/// demand-miss vpns plus the tie-breaking RNG stream.
#[derive(Debug, Clone)]
pub struct Detector {
    window: VecDeque<Vpn>,
    capacity: usize,
    rng: Pcg32,
}

impl Detector {
    /// A detector over a `capacity`-entry window, with its
    /// tie-breaking RNG split from `seed` on stream `0xADA0 + node`.
    pub fn new(capacity: usize, seed: u64, node: u32) -> Self {
        Detector {
            window: VecDeque::with_capacity(capacity),
            capacity: capacity.max(2),
            rng: Pcg32::new(seed, 0xADA0 + node as u64),
        }
    }

    /// Record a demand miss, sliding the window.
    pub fn observe(&mut self, vpn: Vpn) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(vpn);
    }

    /// Classification of the current window (pure).
    pub fn pattern(&self) -> Pattern {
        let (a, b) = self.window.as_slices();
        if b.is_empty() {
            classify(a)
        } else {
            let joined: Vec<Vpn> = self.window.iter().copied().collect();
            classify(&joined)
        }
    }

    /// Predict up to `n` pages the node is likely to miss next, most
    /// confident first. Sequential and strided patterns extrapolate
    /// from the last miss; temporal patterns re-issue the most
    /// frequent window entries (RNG breaks frequency ties); random
    /// windows predict nothing.
    pub fn predict(&mut self, n: usize, out: &mut Vec<Vpn>) {
        out.clear();
        let Some(&last) = self.window.back() else {
            return;
        };
        match self.pattern() {
            Pattern::Sequential => {
                for k in 1..=n as u64 {
                    out.push(last + k);
                }
            }
            Pattern::Strided(d) => {
                let mut at = last as i64;
                for _ in 0..n {
                    at += d;
                    if at < 0 {
                        break;
                    }
                    out.push(at as Vpn);
                }
            }
            Pattern::Temporal => {
                // Most frequent pages in the window, excluding the one
                // just missed (it is being fetched by the demand read).
                let mut freq: BTreeMap<Vpn, usize> = BTreeMap::new();
                for &v in &self.window {
                    *freq.entry(v).or_insert(0) += 1;
                }
                freq.remove(&last);
                let mut ranked: Vec<(Vpn, usize)> = freq.into_iter().collect();
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                while out.len() < n && !ranked.is_empty() {
                    let top = ranked[0].1;
                    let ties = ranked.iter().take_while(|&&(_, c)| c == top).count();
                    let pick = if ties > 1 {
                        self.rng.gen_below(ties as u32) as usize
                    } else {
                        0
                    };
                    out.push(ranked.remove(pick).0);
                }
            }
            Pattern::Random => {}
        }
    }

    /// The current window contents, oldest first (for tests/ckpt).
    pub fn window(&self) -> impl Iterator<Item = Vpn> + '_ {
        self.window.iter().copied()
    }

    fn ckpt_save(&self, w: &mut CkptWriter) {
        w.usize(self.window.len());
        for &v in &self.window {
            w.u64(v);
        }
        let (state, inc) = self.rng.state_parts();
        w.u64(state);
        w.u64(inc);
    }

    fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.usize()?;
        self.window.clear();
        for _ in 0..n {
            self.window.push_back(r.u64()?);
        }
        self.rng = Pcg32::from_parts(r.u64()?, r.u64()?);
        Ok(())
    }
}

/// A machine-level prefetch policy: how the disk controllers prefetch
/// and, optionally, an online speculation engine fed by the per-node
/// demand-miss stream.
///
/// The non-speculating policies implement only the first half; every
/// speculation hook defaults to a no-op so the demand paths of the
/// refactored optimal/naive/window modes stay bit-identical to the
/// pre-refactor machine (pinned by `tests/tests/prefetch.rs`).
pub trait PrefetchPolicy: std::fmt::Debug + Send {
    /// Label reported in `RunSummary::prefetch`.
    fn label(&self) -> &'static str;

    /// The controller-level policy the disks run with.
    fn disk_policy(&self) -> nw_disk::PrefetchPolicy;

    /// Whether a ring (NWCache) fault hit still charges the disk arm a
    /// background sequential transfer — the idealized prefetcher
    /// streaming a page the ring hit could not abort in time. True
    /// only for the optimal policy.
    fn background_on_ring_hit(&self) -> bool {
        false
    }

    /// Whether the policy issues speculative hints at all; when false
    /// the machine skips every speculation hook (and their RNG rolls).
    fn speculates(&self) -> bool {
        false
    }

    /// A demand fault at `node` missed to disk for `vpn`.
    fn observe_fault(&mut self, _node: u32, _vpn: Vpn) {}

    /// Fill `out` with the pages `node` is predicted to miss next.
    fn predict(&mut self, _node: u32, out: &mut Vec<Vpn>) {
        out.clear();
    }

    /// The machine accepted a prediction and is issuing the hint.
    fn commit(&mut self, _node: u32, _vpn: Vpn) {}

    /// A hint ended without installing (mesh drop, duplicate,
    /// cancellation, or consumption by the demand read it raced).
    fn on_resolved(&mut self, _vpn: Vpn) {}

    /// A hinted read completed and entered a controller's side cache.
    fn on_installed(&mut self, _vpn: Vpn) {}

    /// Whether a hint for `vpn` is currently in flight.
    fn is_outstanding(&self, _vpn: Vpn) -> bool {
        false
    }

    /// Hints currently in flight for `node`, ascending by vpn.
    fn outstanding_for(&self, _node: u32, out: &mut Vec<Vpn>) {
        out.clear();
    }

    /// In-flight hints for `node` right now.
    fn inflight(&self, _node: u32) -> usize {
        0
    }

    /// Per-node cap on in-flight speculation.
    fn cap(&self) -> usize {
        0
    }

    /// Total hints committed.
    fn spec_issued(&self) -> u64 {
        0
    }

    /// Highest per-node in-flight count ever observed.
    fn inflight_peak(&self) -> u64 {
        0
    }

    /// Whether the policy carries checkpointable state (gates the
    /// PREFETCH checkpoint section, so stateless policies keep the
    /// original section layout).
    fn has_ckpt_state(&self) -> bool {
        false
    }

    /// Serialize detector + speculation state.
    fn ckpt_save(&self, _w: &mut CkptWriter) {}

    /// Restore state saved by [`PrefetchPolicy::ckpt_save`] into a
    /// policy built from the same config.
    fn ckpt_restore(&mut self, _r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        Ok(())
    }
}

/// Build the policy object for `cfg`.
pub fn build_policy(cfg: &MachineConfig) -> Box<dyn PrefetchPolicy> {
    match cfg.prefetch {
        PrefetchMode::Optimal => Box::new(OptimalPolicy),
        PrefetchMode::Naive => Box::new(NaivePolicy),
        PrefetchMode::Window => Box::new(WindowPolicy {
            depth: cfg.disk_cache_pages,
        }),
        PrefetchMode::Adaptive => Box::new(AdaptivePolicy::new(cfg)),
    }
}

/// Idealized prefetching: every controller read hits; ring hits still
/// charge the arm a background transfer.
#[derive(Debug)]
pub struct OptimalPolicy;

impl PrefetchPolicy for OptimalPolicy {
    fn label(&self) -> &'static str {
        "optimal"
    }

    fn disk_policy(&self) -> nw_disk::PrefetchPolicy {
        nw_disk::PrefetchPolicy::Optimal
    }

    fn background_on_ring_hit(&self) -> bool {
        true
    }
}

/// Controller-local sequential span filling on a miss.
#[derive(Debug)]
pub struct NaivePolicy;

impl PrefetchPolicy for NaivePolicy {
    fn label(&self) -> &'static str {
        "naive"
    }

    fn disk_policy(&self) -> nw_disk::PrefetchPolicy {
        nw_disk::PrefetchPolicy::Naive
    }
}

/// Controller-local windowed stream prefetching.
#[derive(Debug)]
pub struct WindowPolicy {
    /// Pages of lookahead the controller maintains.
    pub depth: usize,
}

impl PrefetchPolicy for WindowPolicy {
    fn label(&self) -> &'static str {
        "window"
    }

    fn disk_policy(&self) -> nw_disk::PrefetchPolicy {
        nw_disk::PrefetchPolicy::Window { depth: self.depth }
    }
}

/// The adaptive policy: per-node detectors plus bounded in-flight
/// speculation accounting. Controllers run demand-only; every
/// speculative read is an explicit, cancellable hint.
#[derive(Debug)]
pub struct AdaptivePolicy {
    detectors: Vec<Detector>,
    /// vpn → hinting node, for every hint between commit and
    /// installation/resolution. BTreeMap so iteration (and therefore
    /// cancellation order) is deterministic.
    outstanding: BTreeMap<Vpn, u32>,
    inflight: Vec<u32>,
    cap: usize,
    issued: u64,
    peak: u64,
}

impl AdaptivePolicy {
    /// Build from `cfg`: one detector per node over
    /// `cfg.prefetch_window`, cap [`speculation_cap`].
    pub fn new(cfg: &MachineConfig) -> Self {
        let window = cfg.prefetch_window.max(2);
        AdaptivePolicy {
            detectors: (0..cfg.nodes)
                .map(|n| Detector::new(window, cfg.seed, n))
                .collect(),
            outstanding: BTreeMap::new(),
            inflight: vec![0; cfg.nodes as usize],
            cap: speculation_cap(window),
            issued: 0,
            peak: 0,
        }
    }

    fn release(&mut self, vpn: Vpn) {
        if let Some(node) = self.outstanding.remove(&vpn) {
            let c = &mut self.inflight[node as usize];
            *c = c.saturating_sub(1);
        }
    }
}

impl PrefetchPolicy for AdaptivePolicy {
    fn label(&self) -> &'static str {
        "adaptive"
    }

    fn disk_policy(&self) -> nw_disk::PrefetchPolicy {
        nw_disk::PrefetchPolicy::Demand
    }

    fn speculates(&self) -> bool {
        true
    }

    fn observe_fault(&mut self, node: u32, vpn: Vpn) {
        self.detectors[node as usize].observe(vpn);
    }

    fn predict(&mut self, node: u32, out: &mut Vec<Vpn>) {
        let want = self.cap;
        self.detectors[node as usize].predict(want, out);
    }

    fn commit(&mut self, node: u32, vpn: Vpn) {
        debug_assert!(!self.outstanding.contains_key(&vpn));
        self.outstanding.insert(vpn, node);
        let c = &mut self.inflight[node as usize];
        *c += 1;
        debug_assert!(*c as usize <= self.cap, "speculation cap exceeded");
        self.issued += 1;
        self.peak = self.peak.max(*c as u64);
    }

    fn on_resolved(&mut self, vpn: Vpn) {
        self.release(vpn);
    }

    fn on_installed(&mut self, vpn: Vpn) {
        self.release(vpn);
    }

    fn is_outstanding(&self, vpn: Vpn) -> bool {
        self.outstanding.contains_key(&vpn)
    }

    fn outstanding_for(&self, node: u32, out: &mut Vec<Vpn>) {
        out.clear();
        out.extend(
            self.outstanding
                .iter()
                .filter(|&(_, &n)| n == node)
                .map(|(&v, _)| v),
        );
    }

    fn inflight(&self, node: u32) -> usize {
        self.inflight[node as usize] as usize
    }

    fn cap(&self) -> usize {
        self.cap
    }

    fn spec_issued(&self) -> u64 {
        self.issued
    }

    fn inflight_peak(&self) -> u64 {
        self.peak
    }

    fn has_ckpt_state(&self) -> bool {
        true
    }

    fn ckpt_save(&self, w: &mut CkptWriter) {
        w.usize(self.detectors.len());
        for d in &self.detectors {
            d.ckpt_save(w);
        }
        w.usize(self.outstanding.len());
        for (&vpn, &node) in &self.outstanding {
            w.u64(vpn);
            w.u32(node);
        }
        w.usize(self.inflight.len());
        for &c in &self.inflight {
            w.u32(c);
        }
        w.u64(self.issued);
        w.u64(self.peak);
    }

    fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.usize()?;
        if n != self.detectors.len() {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("checkpoint has {n} detectors, machine has {}", self.detectors.len()),
            });
        }
        for d in &mut self.detectors {
            d.ckpt_restore(r)?;
        }
        let n = r.usize()?;
        self.outstanding.clear();
        for _ in 0..n {
            let vpn = r.u64()?;
            let node = r.u32()?;
            self.outstanding.insert(vpn, node);
        }
        let n = r.usize()?;
        if n != self.inflight.len() {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("checkpoint has {n} inflight slots, machine has {}", self.inflight.len()),
            });
        }
        for c in &mut self.inflight {
            *c = r.u32()?;
        }
        self.issued = r.u64()?;
        self.peak = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(window: usize) -> Detector {
        Detector::new(window, 0x1999, 0)
    }

    fn feed(d: &mut Detector, stream: &[Vpn]) {
        for &v in stream {
            d.observe(v);
        }
    }

    #[test]
    fn pure_sequential_classifies_sequential() {
        let mut d = det(8);
        feed(&mut d, &[100, 101, 102]);
        assert_eq!(d.pattern(), Pattern::Sequential);
        feed(&mut d, &[103, 104, 105, 106, 107, 108]);
        assert_eq!(d.pattern(), Pattern::Sequential);
        let mut out = Vec::new();
        d.predict(4, &mut out);
        assert_eq!(out, vec![109, 110, 111, 112]);
    }

    #[test]
    fn fixed_stride_classifies_strided() {
        let mut d = det(8);
        feed(&mut d, &[10, 17, 24, 31, 38]);
        assert_eq!(d.pattern(), Pattern::Strided(7));
        let mut out = Vec::new();
        d.predict(3, &mut out);
        assert_eq!(out, vec![45, 52, 59]);
        // Negative stride extrapolates downward and stops at zero.
        let mut d = det(8);
        feed(&mut d, &[30, 20, 10]);
        assert_eq!(d.pattern(), Pattern::Strided(-10));
        d.predict(4, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn repeating_set_classifies_temporal() {
        let mut d = det(8);
        feed(&mut d, &[5, 9, 5, 9, 5, 9, 5, 9]);
        // Alternation: deltas are +4/-4, neither dominates, two
        // distinct pages in an 8-deep window.
        assert_eq!(d.pattern(), Pattern::Temporal);
        let mut out = Vec::new();
        d.predict(2, &mut out);
        // The page just missed (9) is excluded; 5 is the prediction.
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn shuffled_stream_classifies_random_and_predicts_nothing() {
        let mut d = det(8);
        feed(&mut d, &[830, 12, 407, 955, 3, 621, 78, 500]);
        assert_eq!(d.pattern(), Pattern::Random);
        let mut out = vec![1, 2, 3];
        d.predict(4, &mut out);
        assert!(out.is_empty(), "random windows must predict nothing");
    }

    #[test]
    fn too_few_observations_stay_random() {
        let mut d = det(8);
        assert_eq!(d.pattern(), Pattern::Random);
        d.observe(1);
        assert_eq!(d.pattern(), Pattern::Random);
        d.observe(2);
        assert_eq!(d.pattern(), Pattern::Random, "below MIN_OBSERVATIONS");
        d.observe(3);
        assert_eq!(d.pattern(), Pattern::Sequential);
    }

    #[test]
    fn mixed_phase_reclassifies_within_window_bound() {
        let mut d = det(8);
        feed(&mut d, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(d.pattern(), Pattern::Sequential);
        // Switch to a strided phase; within one full window the old
        // phase's evidence is gone and the detector re-classifies.
        feed(&mut d, &[100, 110, 120, 130, 140, 150, 160, 170]);
        assert_eq!(d.pattern(), Pattern::Strided(10));
    }

    #[test]
    fn adversarial_alternation_never_classifies_sequential_or_strided() {
        // A stream engineered to tease the stride detector: the deltas
        // alternate +k/-k so no direction ever reaches 70%.
        let mut d = det(8);
        for i in 0..64u64 {
            d.observe(if i % 2 == 0 { 1000 } else { 1000 + 37 });
            let p = d.pattern();
            assert!(
                !matches!(p, Pattern::Sequential | Pattern::Strided(_)),
                "alternation misclassified as {p:?} at step {i}"
            );
        }
        assert_eq!(d.pattern(), Pattern::Temporal);
    }

    #[test]
    fn classification_is_pure_function_of_the_stream() {
        // Property: across many seeded random streams, two detectors
        // with different RNG seeds classify identically at every step
        // — the RNG may only influence temporal tie-breaking, never
        // the classification.
        for case in 0..32u64 {
            let mut rng = Pcg32::new(0xCAFE + case, case);
            let mut a = Detector::new(8, 1, 0);
            let mut b = Detector::new(8, 0xDEAD_BEEF, 5);
            for step in 0..200 {
                let v = match rng.gen_below(4) {
                    0 => rng.gen_below(1000) as u64,
                    1 => a.window().last().unwrap_or(0) + 1,
                    2 => a.window().last().unwrap_or(0) + 7,
                    _ => a.window().last().unwrap_or(0),
                };
                a.observe(v);
                b.observe(v);
                assert_eq!(
                    a.pattern(),
                    b.pattern(),
                    "case {case} step {step}: classification depended on RNG"
                );
                // classify() is also invariant under re-evaluation.
                let w: Vec<Vpn> = a.window().collect();
                assert_eq!(classify(&w), classify(&w));
            }
        }
    }

    #[test]
    fn sequential_with_noise_still_classifies_within_window() {
        // One wrap-around jump inside an otherwise sequential window
        // (the pinned scenario's per-node slice wrap) must not break
        // the classification: 6 of 7 deltas are +1.
        let mut d = det(8);
        feed(&mut d, &[29, 30, 31, 0, 1, 2, 3, 4]);
        assert_eq!(d.pattern(), Pattern::Sequential);
    }

    #[test]
    fn speculation_cap_tracks_window() {
        assert_eq!(speculation_cap(2), 2);
        assert_eq!(speculation_cap(8), 4);
        assert_eq!(speculation_cap(64), 8);
    }

    #[test]
    fn adaptive_policy_accounts_inflight_and_caps() {
        let cfg = MachineConfig::paper_default(
            crate::config::MachineKind::NwCache,
            PrefetchMode::Adaptive,
        );
        let mut p = AdaptivePolicy::new(&cfg);
        assert_eq!(p.cap(), speculation_cap(cfg.prefetch_window));
        assert_eq!(p.cap(), 8);
        for v in [10, 11, 12, 13] {
            p.commit(0, v);
        }
        assert_eq!(p.inflight(0), 4);
        assert_eq!(p.inflight_peak(), 4);
        assert!(p.is_outstanding(11));
        p.on_resolved(11);
        p.on_installed(10);
        assert_eq!(p.inflight(0), 2);
        let mut out = Vec::new();
        p.outstanding_for(0, &mut out);
        assert_eq!(out, vec![12, 13]);
        assert_eq!(p.spec_issued(), 4);
        assert_eq!(p.inflight_peak(), 4, "peak is monotone");
    }

    #[test]
    fn adaptive_policy_state_round_trips() {
        let cfg = MachineConfig::paper_default(
            crate::config::MachineKind::NwCache,
            PrefetchMode::Adaptive,
        );
        let mut p = AdaptivePolicy::new(&cfg);
        for v in [100, 101, 102, 103, 104] {
            p.observe_fault(2, v);
        }
        p.commit(2, 105);
        p.commit(2, 106);
        // Burn a temporal tie-break so the RNG state is non-initial.
        let mut out = Vec::new();
        p.observe_fault(3, 7);
        p.observe_fault(3, 8);
        p.observe_fault(3, 7);
        p.observe_fault(3, 8);
        p.predict(3, &mut out);

        let mut w = CkptWriter::new();
        w.begin_section(1);
        p.ckpt_save(&mut w);
        w.end_section();
        let bytes = w.finish();

        let mut q = AdaptivePolicy::new(&cfg);
        let mut r = CkptReader::new(&bytes).expect("header");
        r.begin_section(1).expect("section");
        q.ckpt_restore(&mut r).expect("restore");
        r.end_section().expect("end");

        let mut w2 = CkptWriter::new();
        w2.begin_section(1);
        q.ckpt_save(&mut w2);
        w2.end_section();
        assert_eq!(bytes, w2.finish(), "policy state must round-trip");
        assert!(q.is_outstanding(105));
        assert_eq!(q.inflight(2), 2);
        // Post-restore predictions match the original instance.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        p.predict(2, &mut a);
        q.predict(2, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn build_policy_maps_modes() {
        use crate::config::MachineKind::Standard;
        for (mode, label, spec) in [
            (PrefetchMode::Optimal, "optimal", false),
            (PrefetchMode::Naive, "naive", false),
            (PrefetchMode::Window, "window", false),
            (PrefetchMode::Adaptive, "adaptive", true),
        ] {
            let cfg = MachineConfig::paper_default(Standard, mode);
            let p = build_policy(&cfg);
            assert_eq!(p.label(), label);
            assert_eq!(p.speculates(), spec);
            assert_eq!(p.has_ckpt_state(), spec);
            assert_eq!(p.background_on_ring_hit(), mode == PrefetchMode::Optimal);
        }
    }
}
