//! Virtual-memory bookkeeping: the machine-wide page table, per-node
//! frame pools, and barrier state.

use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use nw_sim::Time;

/// A virtual page number.
pub type Vpn = u64;

/// A processor / node id (one processor per node).
pub type ProcId = u32;

/// Where a page currently lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageState {
    /// Only the disk (or its controller cache) holds the page.
    OnDisk,
    /// Resident in `node`'s memory.
    InMemory {
        /// Home node of the frame.
        node: u32,
    },
    /// Being fetched into `node`'s memory; `waiters` are processors
    /// blocked on the arrival (their wait is `Transit` time).
    InTransit {
        /// Destination node.
        node: u32,
        /// Blocked processors (the faulting one first).
        waiters: Vec<ProcId>,
    },
    /// Being swapped out of memory; faults must wait for completion
    /// and then re-fault.
    SwappingOut {
        /// Node performing the swap-out.
        from: u32,
        /// Processors waiting to re-fault.
        waiters: Vec<ProcId>,
    },
    /// Stored on the optical ring (`Ring` bit set), on the cache
    /// channel of the node that swapped it out.
    OnRing {
        /// Cache channel (= swapping node) holding the page.
        channel: u32,
    },
}

/// One entry of the machine-wide page table.
#[derive(Debug, Clone)]
pub struct PageEntry {
    /// Current location/state.
    pub state: PageState,
    /// Set when the resident copy has been modified.
    pub dirty: bool,
    /// Last access time (drives per-node LRU replacement).
    pub last_access: Time,
    /// When the page became resident (drives FIFO/Clock replacement).
    pub arrived_at: Time,
    /// Referenced bit for Clock (second-chance) replacement.
    pub referenced: bool,
    /// The node of the last virtual-to-physical translation — used to
    /// locate the cache channel of a page with the Ring bit set.
    pub last_node: u32,
}

impl PageEntry {
    /// A fresh entry: page on disk, clean, never accessed.
    pub fn new() -> Self {
        PageEntry {
            state: PageState::OnDisk,
            dirty: false,
            last_access: 0,
            arrived_at: 0,
            referenced: false,
            last_node: 0,
        }
    }
}

impl Default for PageEntry {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-node physical frame accounting.
#[derive(Debug)]
pub struct FramePool {
    total: u32,
    free: u32,
    /// Evictions started but not yet freeing a frame (dirty pages
    /// whose swap-out has not been acknowledged).
    pending_evictions: u32,
    /// Pages resident in this node's memory.
    resident: Vec<Vpn>,
    /// Processors stalled for lack of a free frame (NoFree time).
    pub waiters: Vec<ProcId>,
}

impl FramePool {
    /// A pool of `total` frames, all free.
    pub fn new(total: u32) -> Self {
        FramePool {
            total,
            free: total,
            pending_evictions: 0,
            resident: Vec::with_capacity(total as usize),
            waiters: Vec::new(),
        }
    }

    /// Free frames right now.
    pub fn free(&self) -> u32 {
        self.free
    }

    /// Total frames.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Evictions in flight.
    pub fn pending_evictions(&self) -> u32 {
        self.pending_evictions
    }

    /// Take one free frame; `false` if none available.
    pub fn take(&mut self) -> bool {
        if self.free == 0 {
            return false;
        }
        self.free -= 1;
        true
    }

    /// Return a frame to the pool (eviction completed or page freed).
    pub fn release(&mut self) {
        assert!(
            self.free < self.total,
            "released more frames than exist"
        );
        self.free += 1;
    }

    /// Record the start of a dirty-page eviction.
    pub fn eviction_started(&mut self) {
        self.pending_evictions += 1;
    }

    /// Record the completion of a dirty-page eviction.
    pub fn eviction_finished(&mut self) {
        assert!(self.pending_evictions > 0);
        self.pending_evictions -= 1;
    }

    /// Note that `vpn` is now resident here.
    pub fn add_resident(&mut self, vpn: Vpn) {
        debug_assert!(!self.resident.contains(&vpn));
        self.resident.push(vpn);
    }

    /// Remove `vpn` from the resident set.
    pub fn remove_resident(&mut self, vpn: Vpn) {
        if let Some(i) = self.resident.iter().position(|&v| v == vpn) {
            self.resident.swap_remove(i);
        }
    }

    /// Iterate over resident pages.
    pub fn resident(&self) -> &[Vpn] {
        &self.resident
    }

    /// Serialize the pool. The resident list is dumped in stored order
    /// — its order is observable through replacement victim scans.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u32(self.total);
        w.u32(self.free);
        w.u32(self.pending_evictions);
        w.usize(self.resident.len());
        for &vpn in &self.resident {
            w.u64(vpn);
        }
        w.usize(self.waiters.len());
        for &p in &self.waiters {
            w.u32(p);
        }
    }

    /// Overlay state saved by [`FramePool::ckpt_save`] onto a pool of
    /// the same size.
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let total = r.u32()?;
        if total != self.total {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("frame pool has {total} frames, expected {}", self.total),
            });
        }
        self.free = r.u32()?;
        self.pending_evictions = r.u32()?;
        let n = r.usize()?;
        if n > total as usize {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("{n} resident pages exceed {total} frames"),
            });
        }
        self.resident.clear();
        for _ in 0..n {
            self.resident.push(r.u64()?);
        }
        let n = r.usize()?;
        self.waiters.clear();
        for _ in 0..n {
            self.waiters.push(r.u32()?);
        }
        Ok(())
    }
}

/// Centralized barrier bookkeeping.
#[derive(Debug)]
pub struct BarrierState {
    nprocs: usize,
    current_id: u32,
    /// `(proc, local arrival time)` of processors already waiting.
    arrived: Vec<(ProcId, Time)>,
}

impl BarrierState {
    /// Barrier synchronizing `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        BarrierState {
            nprocs,
            current_id: 0,
            arrived: Vec::with_capacity(nprocs),
        }
    }

    /// Processor `p` arrives at barrier `id` at local time `t`.
    /// Returns `Some(waiters)` (including `p`) when this arrival
    /// releases the barrier, `None` if `p` must block.
    ///
    /// # Panics
    /// Panics if `id` differs from the current barrier id — the
    /// workload generators guarantee every processor emits the same
    /// barrier sequence.
    pub fn arrive(&mut self, p: ProcId, id: u32, t: Time) -> Option<Vec<(ProcId, Time)>> {
        assert_eq!(
            id, self.current_id,
            "proc {p} arrived at barrier {id}, expected {}",
            self.current_id
        );
        debug_assert!(!self.arrived.iter().any(|&(q, _)| q == p));
        self.arrived.push((p, t));
        if self.arrived.len() == self.nprocs {
            self.current_id += 1;
            Some(std::mem::take(&mut self.arrived))
        } else {
            None
        }
    }

    /// Number of processors currently waiting.
    pub fn waiting(&self) -> usize {
        self.arrived.len()
    }

    /// The barrier id being gathered.
    pub fn current(&self) -> u32 {
        self.current_id
    }

    /// Serialize the barrier (arrivals in arrival order).
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.usize(self.nprocs);
        w.u32(self.current_id);
        w.usize(self.arrived.len());
        for &(p, t) in &self.arrived {
            w.u32(p);
            w.time(t);
        }
    }

    /// Overlay state saved by [`BarrierState::ckpt_save`].
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let nprocs = r.usize()?;
        if nprocs != self.nprocs {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("barrier spans {nprocs} procs, expected {}", self.nprocs),
            });
        }
        self.current_id = r.u32()?;
        let n = r.usize()?;
        if n >= nprocs.max(1) {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("{n} barrier arrivals for {nprocs} procs"),
            });
        }
        self.arrived.clear();
        for _ in 0..n {
            let p = r.u32()?;
            let t = r.time()?;
            self.arrived.push((p, t));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_pool_take_release() {
        let mut fp = FramePool::new(2);
        assert!(fp.take());
        assert!(fp.take());
        assert!(!fp.take());
        fp.release();
        assert_eq!(fp.free(), 1);
        assert!(fp.take());
    }

    #[test]
    #[should_panic(expected = "released more frames")]
    fn frame_pool_overflow_release_panics() {
        let mut fp = FramePool::new(1);
        fp.release();
    }

    #[test]
    fn resident_tracking() {
        let mut fp = FramePool::new(4);
        fp.add_resident(10);
        fp.add_resident(20);
        assert_eq!(fp.resident().len(), 2);
        fp.remove_resident(10);
        assert_eq!(fp.resident(), &[20]);
        fp.remove_resident(99); // no-op
        assert_eq!(fp.resident().len(), 1);
    }

    #[test]
    fn eviction_counters() {
        let mut fp = FramePool::new(4);
        fp.eviction_started();
        fp.eviction_started();
        assert_eq!(fp.pending_evictions(), 2);
        fp.eviction_finished();
        assert_eq!(fp.pending_evictions(), 1);
    }

    #[test]
    fn barrier_releases_on_last_arrival() {
        let mut b = BarrierState::new(3);
        assert!(b.arrive(0, 0, 100).is_none());
        assert!(b.arrive(2, 0, 200).is_none());
        assert_eq!(b.waiting(), 2);
        let released = b.arrive(1, 0, 150).unwrap();
        assert_eq!(released.len(), 3);
        assert_eq!(b.current(), 1);
        assert_eq!(b.waiting(), 0);
    }

    #[test]
    #[should_panic(expected = "expected 0")]
    fn barrier_rejects_wrong_id() {
        let mut b = BarrierState::new(2);
        b.arrive(0, 1, 0);
    }

    #[test]
    fn page_entry_defaults() {
        let e = PageEntry::new();
        assert_eq!(e.state, PageState::OnDisk);
        assert!(!e.dirty);
    }
}
