//! Whole-machine checkpoint files (`nwckpt-v1`).
//!
//! A checkpoint captures a [`Machine`] mid-run so the simulation can be
//! resumed later — after a crash, on another process, or to fork a run
//! — and produce the *bit-identical* remainder of the run. The file is
//! the `nwckpt-v1` container from [`nw_sim::ckpt`]: magic + version,
//! LEB128 varints, per-section length framing and a trailing whole-file
//! checksum, so torn or corrupted files are rejected with a structured
//! error before any state is interpreted.
//!
//! ## Layout
//!
//! | id | section | contents |
//! |----|---------|----------|
//! | 1  | META    | workload spec, app name, events dispatched, sim time |
//! | 2  | CONFIG  | the full [`MachineConfig`] including the fault plan |
//! | 3  | ENGINE  | event queue (counters + pending events), run-loop state |
//! | 4  | PROCS   | per-processor stream position, caches, TLB, write buffer |
//! | 5  | MEMHIER | memory/I/O buses, coherence directory |
//! | 6  | DISKS   | controller caches, mechanics, log disks, fault injectors |
//! | 7  | RING    | optical ring slot sets, NWCache interface FIFOs |
//! | 8  | MESH    | link horizons, traffic tallies, fault injector |
//! | 9  | VM      | page table, frame pools, barrier, protocol maps |
//! | 10 | METRICS | machine-owned metric accumulators |
//! | 11 | TRACER  | page-lifecycle tracer |
//! | 12 | PREFETCH | adaptive-prefetch detector state (adaptive runs only) |
//!
//! ## Restore model
//!
//! Action streams are pure functions of `(workload, nodes, scale,
//! seed)`, so they are not serialized: restore re-parses the META
//! workload spec, rebuilds the machine from the CONFIG section, and
//! fast-forwards each rebuilt stream by its consumed-action count. A
//! consequence worth knowing: resuming a `workload:<trace-file>` run
//! needs that trace file present at its recorded path.

use crate::error::SimError;
use crate::config::{
    FaultPlan, IoPlacement, MachineConfig, MachineKind, PrefetchMode, ReplacementPolicy, RingShard,
};
use crate::machine::Machine;
use crate::workload::AppSel;
use nw_sim::atomic_write::write_atomic;
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use nw_sim::Time;
use std::path::Path;

/// Section ids of the `nwckpt-v1` machine checkpoint, in file order.
pub mod sections {
    /// Workload spec + progress header.
    pub const META: u32 = 1;
    /// Full machine configuration.
    pub const CONFIG: u32 = 2;
    /// Event queue and run-loop state.
    pub const ENGINE: u32 = 3;
    /// Per-processor state.
    pub const PROCS: u32 = 4;
    /// Buses and coherence directory.
    pub const MEMHIER: u32 = 5;
    /// Disk controllers and fault injectors.
    pub const DISKS: u32 = 6;
    /// Optical ring and interfaces.
    pub const RING: u32 = 7;
    /// Mesh interconnect.
    pub const MESH: u32 = 8;
    /// Virtual-memory state.
    pub const VM: u32 = 9;
    /// Metric accumulators.
    pub const METRICS: u32 = 10;
    /// Page-lifecycle tracer.
    pub const TRACER: u32 = 11;
    /// Adaptive-prefetch detector state. Written only when the run's
    /// policy carries state, so non-adaptive checkpoints are unchanged.
    pub const PREFETCH: u32 = 12;

    /// Human-readable section name for validators and diff output.
    pub fn name(id: u32) -> &'static str {
        match id {
            META => "META",
            CONFIG => "CONFIG",
            ENGINE => "ENGINE",
            PROCS => "PROCS",
            MEMHIER => "MEMHIER",
            DISKS => "DISKS",
            RING => "RING",
            MESH => "MESH",
            VM => "VM",
            METRICS => "METRICS",
            TRACER => "TRACER",
            PREFETCH => "PREFETCH",
            _ => "UNKNOWN",
        }
    }
}

/// The checkpoint's META header: enough to describe the snapshot
/// without rebuilding the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptMeta {
    /// Workload spec string ([`AppSel::parse`] syntax) used to rebuild
    /// the action streams at restore.
    pub spec: String,
    /// Workload display name at save time.
    pub app: String,
    /// Events dispatched when the snapshot was taken.
    pub events: u64,
    /// Simulated time of the snapshot (pcycles).
    pub now: Time,
}

fn save_config(w: &mut CkptWriter, cfg: &MachineConfig) {
    w.u32(match cfg.kind {
        MachineKind::Standard => 0,
        MachineKind::NwCache => 1,
        MachineKind::Dcd => 2,
    });
    w.u32(match cfg.prefetch {
        PrefetchMode::Optimal => 0,
        PrefetchMode::Naive => 1,
        PrefetchMode::Window => 2,
        PrefetchMode::Adaptive => 3,
    });
    w.usize(cfg.prefetch_window);
    w.u32(cfg.nodes);
    w.u32(cfg.io_nodes);
    w.u64(cfg.page_bytes);
    w.time(cfg.tlb_miss_latency);
    w.time(cfg.tlb_shootdown_latency);
    w.time(cfg.interrupt_latency);
    w.u64(cfg.memory_per_node);
    w.u32(cfg.min_free_frames);
    w.u32(match cfg.replacement {
        ReplacementPolicy::Lru => 0,
        ReplacementPolicy::Fifo => 1,
        ReplacementPolicy::Clock => 2,
    });
    w.usize(cfg.ring_channels);
    w.usize(cfg.ring_slots_per_channel);
    w.time(cfg.ring_round_trip);
    w.usize(cfg.disk_cache_pages);
    w.time(cfg.disk_flush_delay);
    w.usize(cfg.tlb_entries);
    w.time(cfg.l1_latency);
    w.time(cfg.l2_latency);
    w.time(cfg.mem_latency);
    w.time(cfg.dir_latency);
    w.usize(cfg.wb_entries);
    w.u64(cfg.ctl_msg_bytes);
    w.time(cfg.quantum);
    w.f64(cfg.app_scale);
    w.u64(cfg.seed);
    let fp = &cfg.faults;
    w.u64(fp.seed);
    w.f64(fp.disk_error_rate);
    w.f64(fp.disk_stuck_rate);
    w.usize(fp.ring_channel_failures.len());
    for &(t, ch) in &fp.ring_channel_failures {
        w.time(t);
        w.u32(ch);
    }
    w.f64(fp.mesh_drop_rate);
    w.f64(fp.mesh_corrupt_rate);
    w.u32(fp.max_retries);
    w.time(fp.retry_backoff);
    w.time(fp.request_timeout);
    // Generated-topology fields ride as an optional trailing block so
    // every pre-topology checkpoint of the default machine keeps its
    // exact bytes: written only when some field differs from the
    // legacy defaults, read back only when the section has bytes left.
    if cfg.mesh_width != 0
        || cfg.mesh_height != 0
        || cfg.io_placement != IoPlacement::Spread
        || cfg.ring_count != 1
        || cfg.ring_shard != RingShard::Page
        || cfg.dir_shards != 1
    {
        w.u32(cfg.mesh_width);
        w.u32(cfg.mesh_height);
        w.u32(match cfg.io_placement {
            IoPlacement::Spread => 0,
            IoPlacement::Corners => 1,
            IoPlacement::Row => 2,
        });
        w.usize(cfg.ring_count);
        w.u32(match cfg.ring_shard {
            RingShard::Page => 0,
            RingShard::Region => 1,
        });
        w.usize(cfg.dir_shards);
    }
}

fn bad_tag(r: &CkptReader<'_>, what: &str, tag: u32) -> CkptError {
    CkptError::Invalid {
        offset: r.offset(),
        what: format!("unknown {what} tag {tag}"),
    }
}

fn load_config(r: &mut CkptReader<'_>) -> Result<MachineConfig, CkptError> {
    let kind = match r.u32()? {
        0 => MachineKind::Standard,
        1 => MachineKind::NwCache,
        2 => MachineKind::Dcd,
        t => return Err(bad_tag(r, "machine-kind", t)),
    };
    let prefetch = match r.u32()? {
        0 => PrefetchMode::Optimal,
        1 => PrefetchMode::Naive,
        2 => PrefetchMode::Window,
        3 => PrefetchMode::Adaptive,
        t => return Err(bad_tag(r, "prefetch-mode", t)),
    };
    let prefetch_window = r.usize()?;
    let nodes = r.u32()?;
    let io_nodes = r.u32()?;
    let page_bytes = r.u64()?;
    let tlb_miss_latency = r.time()?;
    let tlb_shootdown_latency = r.time()?;
    let interrupt_latency = r.time()?;
    let memory_per_node = r.u64()?;
    let min_free_frames = r.u32()?;
    let replacement = match r.u32()? {
        0 => ReplacementPolicy::Lru,
        1 => ReplacementPolicy::Fifo,
        2 => ReplacementPolicy::Clock,
        t => return Err(bad_tag(r, "replacement-policy", t)),
    };
    let ring_channels = r.usize()?;
    let ring_slots_per_channel = r.usize()?;
    let ring_round_trip = r.time()?;
    let disk_cache_pages = r.usize()?;
    let disk_flush_delay = r.time()?;
    let tlb_entries = r.usize()?;
    let l1_latency = r.time()?;
    let l2_latency = r.time()?;
    let mem_latency = r.time()?;
    let dir_latency = r.time()?;
    let wb_entries = r.usize()?;
    let ctl_msg_bytes = r.u64()?;
    let quantum = r.time()?;
    let app_scale = r.f64()?;
    let seed = r.u64()?;
    let fseed = r.u64()?;
    let disk_error_rate = r.f64()?;
    let disk_stuck_rate = r.f64()?;
    let n = r.usize()?;
    let mut ring_channel_failures = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let t = r.time()?;
        let ch = r.u32()?;
        ring_channel_failures.push((t, ch));
    }
    let mesh_drop_rate = r.f64()?;
    let mesh_corrupt_rate = r.f64()?;
    let max_retries = r.u32()?;
    let retry_backoff = r.time()?;
    let request_timeout = r.time()?;
    // Optional trailing topology block (see `save_config`): absent in
    // checkpoints of the default paper machine and in every
    // pre-topology checkpoint.
    let (mesh_width, mesh_height, io_placement, ring_count, ring_shard, dir_shards) =
        if r.section_remaining() > 0 {
            let mw = r.u32()?;
            let mh = r.u32()?;
            let place = match r.u32()? {
                0 => IoPlacement::Spread,
                1 => IoPlacement::Corners,
                2 => IoPlacement::Row,
                t => return Err(bad_tag(r, "io-placement", t)),
            };
            let rings = r.usize()?;
            let shard = match r.u32()? {
                0 => RingShard::Page,
                1 => RingShard::Region,
                t => return Err(bad_tag(r, "ring-shard", t)),
            };
            let dshards = r.usize()?;
            (mw, mh, place, rings, shard, dshards)
        } else {
            (0, 0, IoPlacement::Spread, 1, RingShard::Page, 1)
        };
    Ok(MachineConfig {
        kind,
        prefetch,
        prefetch_window,
        nodes,
        io_nodes,
        page_bytes,
        tlb_miss_latency,
        tlb_shootdown_latency,
        interrupt_latency,
        memory_per_node,
        min_free_frames,
        replacement,
        mesh_width,
        mesh_height,
        io_placement,
        ring_channels,
        ring_slots_per_channel,
        ring_round_trip,
        ring_count,
        ring_shard,
        dir_shards,
        disk_cache_pages,
        disk_flush_delay,
        tlb_entries,
        l1_latency,
        l2_latency,
        mem_latency,
        dir_latency,
        wb_entries,
        ctl_msg_bytes,
        quantum,
        app_scale,
        seed,
        faults: FaultPlan {
            seed: fseed,
            disk_error_rate,
            disk_stuck_rate,
            ring_channel_failures,
            mesh_drop_rate,
            mesh_corrupt_rate,
            max_retries,
            retry_backoff,
            request_timeout,
        },
    })
}

/// Canonical bytes of a [`MachineConfig`] — the exact CONFIG-section
/// encoding a checkpoint of this config would carry. Two configs have
/// equal bytes iff every field (fault plan and topology included) is
/// equal, which is what makes the encoding usable as a cache identity.
pub fn config_to_bytes(cfg: &MachineConfig) -> Vec<u8> {
    let mut w = CkptWriter::new();
    w.begin_section(sections::CONFIG);
    save_config(&mut w, cfg);
    w.end_section();
    w.finish()
}

/// Content address of a warm machine state: FNV-1a 64 over the
/// canonical CONFIG bytes, the workload spec, and the warmup event
/// count. The server's warm-state cache keys on this, so a cached
/// post-warmup checkpoint is only ever replayed into a run whose
/// config, workload, and warmup prefix are all bit-equal to the run
/// that produced it — the property the warm-equals-cold guarantee
/// rests on.
pub fn warm_key(cfg: &MachineConfig, spec: &str, warmup_events: u64) -> u64 {
    let mut bytes = config_to_bytes(cfg);
    bytes.extend_from_slice(spec.as_bytes());
    bytes.extend_from_slice(&warmup_events.to_le_bytes());
    nw_sim::ckpt::fnv1a(&bytes)
}

/// Map a format-level [`CkptError`] onto the machine-level error,
/// attaching the file (or `<memory>`) the bytes came from.
fn ckpt_to_sim(origin: &str, e: CkptError) -> SimError {
    match e {
        CkptError::BadVersion { found, expected } => SimError::CheckpointVersion {
            path: origin.to_string(),
            found,
            expected,
        },
        other => SimError::CheckpointCorrupt {
            path: origin.to_string(),
            detail: other.to_string(),
        },
    }
}

/// Serialize a machine snapshot. `spec` must be the [`AppSel::parse`]
/// spec the machine's workload was built from — restore re-parses it to
/// rebuild the action streams.
pub fn machine_to_bytes(spec: &str, m: &Machine) -> Vec<u8> {
    let mut w = CkptWriter::new();
    w.begin_section(sections::META);
    w.str(spec);
    w.str(m.app_name);
    w.u64(m.events_dispatched);
    w.time(m.queue.now());
    w.end_section();
    w.begin_section(sections::CONFIG);
    save_config(&mut w, &m.cfg);
    w.end_section();
    m.ckpt_save(&mut w);
    w.finish()
}

fn decode(bytes: &[u8], origin: &str) -> Result<(CkptMeta, Machine), SimError> {
    let mut r = CkptReader::new(bytes).map_err(|e| ckpt_to_sim(origin, e))?;
    let meta = (|| -> Result<CkptMeta, CkptError> {
        r.begin_section(sections::META)?;
        let spec = r.str()?;
        let app = r.str()?;
        let events = r.u64()?;
        let now = r.time()?;
        r.end_section()?;
        Ok(CkptMeta {
            spec,
            app,
            events,
            now,
        })
    })()
    .map_err(|e| ckpt_to_sim(origin, e))?;
    let cfg = (|| -> Result<MachineConfig, CkptError> {
        r.begin_section(sections::CONFIG)?;
        let cfg = load_config(&mut r)?;
        r.end_section()?;
        Ok(cfg)
    })()
    .map_err(|e| ckpt_to_sim(origin, e))?;
    let sel = AppSel::parse(&meta.spec)?;
    let build = sel.build(&cfg)?;
    let mut m = Machine::try_from_build(cfg, build)?;
    m.ckpt_restore(&mut r).map_err(|e| ckpt_to_sim(origin, e))?;
    r.finish().map_err(|e| ckpt_to_sim(origin, e))?;
    if m.events_dispatched != meta.events {
        return Err(SimError::CheckpointCorrupt {
            path: origin.to_string(),
            detail: format!(
                "META says {} events dispatched, ENGINE restored {}",
                meta.events, m.events_dispatched
            ),
        });
    }
    Ok((meta, m))
}

/// Rebuild a machine from checkpoint bytes. The inverse of
/// [`machine_to_bytes`]: parse the META spec, rebuild from CONFIG,
/// overlay every state section. Format problems surface as
/// [`SimError::CheckpointCorrupt`] / [`SimError::CheckpointVersion`];
/// workload problems (unknown app, missing trace file) as the usual
/// build errors.
pub fn machine_from_bytes(bytes: &[u8]) -> Result<(CkptMeta, Machine), SimError> {
    decode(bytes, "<memory>")
}

/// Save a snapshot of `m` to `path` atomically (temp + rename): a crash
/// mid-save can never leave a truncated checkpoint at `path`.
pub fn save_file(path: &Path, spec: &str, m: &Machine) -> Result<(), SimError> {
    let bytes = machine_to_bytes(spec, m);
    write_atomic(path, &bytes).map_err(|e| SimError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    })
}

/// Load and fully restore a checkpoint file.
pub fn load_file(path: &Path) -> Result<(CkptMeta, Machine), SimError> {
    let origin = path.display().to_string();
    let bytes = std::fs::read(path).map_err(|e| SimError::Io {
        path: origin.clone(),
        detail: e.to_string(),
    })?;
    decode(&bytes, &origin)
}

/// One section of a validated checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section id.
    pub id: u32,
    /// Section name (`"UNKNOWN"` for unrecognized ids).
    pub name: &'static str,
    /// Payload length in bytes.
    pub bytes: usize,
}

/// Result of a structural validation pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptSummary {
    /// Total file size, checksum included.
    pub file_bytes: usize,
    /// Sections in file order.
    pub sections: Vec<SectionInfo>,
    /// The decoded META header.
    pub meta: CkptMeta,
}

/// Structurally validate checkpoint bytes *without* rebuilding the
/// workload: verify magic/version/checksum, walk every section frame,
/// and decode the META header. Cheap enough to run on every autosave.
pub fn validate_bytes(bytes: &[u8]) -> Result<CkptSummary, CkptError> {
    let mut r = CkptReader::new(bytes)?;
    let mut sections_found = Vec::new();
    while let Some((id, payload)) = r.next_raw_section()? {
        sections_found.push(SectionInfo {
            id,
            name: sections::name(id),
            bytes: payload.len(),
        });
    }
    r.finish()?;
    // Second pass for the META header (fixed layout, always first).
    let mut r = CkptReader::new(bytes)?;
    r.begin_section(sections::META)?;
    let spec = r.str()?;
    let app = r.str()?;
    let events = r.u64()?;
    let now = r.time()?;
    r.end_section()?;
    Ok(CkptSummary {
        file_bytes: bytes.len(),
        sections: sections_found,
        meta: CkptMeta {
            spec,
            app,
            events,
            now,
        },
    })
}

/// [`validate_bytes`] on a file, with I/O and format errors mapped to
/// structured [`SimError`]s carrying the path.
pub fn validate_file(path: &Path) -> Result<CkptSummary, SimError> {
    let origin = path.display().to_string();
    let bytes = std::fs::read(path).map_err(|e| SimError::Io {
        path: origin.clone(),
        detail: e.to_string(),
    })?;
    validate_bytes(&bytes).map_err(|e| ckpt_to_sim(&origin, e))
}

/// How one section pair compares between two checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionDiff {
    /// Payloads are byte-identical.
    Same {
        /// Section id.
        id: u32,
        /// Payload length.
        bytes: usize,
    },
    /// Payloads differ.
    Differ {
        /// Section id.
        id: u32,
        /// Payload length in the first file.
        a_bytes: usize,
        /// Payload length in the second file.
        b_bytes: usize,
        /// Offset (within the payload) of the first differing byte.
        first_diff: usize,
    },
    /// The section exists only in the first file.
    OnlyInA {
        /// Section id.
        id: u32,
    },
    /// The section exists only in the second file.
    OnlyInB {
        /// Section id.
        id: u32,
    },
}

impl SectionDiff {
    /// The section id this entry describes.
    pub fn id(&self) -> u32 {
        match *self {
            SectionDiff::Same { id, .. }
            | SectionDiff::Differ { id, .. }
            | SectionDiff::OnlyInA { id }
            | SectionDiff::OnlyInB { id } => id,
        }
    }

    /// Whether the two files agree on this section.
    pub fn is_same(&self) -> bool {
        matches!(self, SectionDiff::Same { .. })
    }
}

/// Compare two checkpoints section by section. Both inputs must be
/// structurally valid; payloads are compared as raw bytes (the codec is
/// canonical — hash containers dump sorted — so byte equality is state
/// equality).
pub fn diff_bytes(a: &[u8], b: &[u8]) -> Result<Vec<SectionDiff>, CkptError> {
    fn scan(bytes: &[u8]) -> Result<Vec<(u32, &[u8])>, CkptError> {
        let mut r = CkptReader::new(bytes)?;
        let mut v = Vec::new();
        while let Some(s) = r.next_raw_section()? {
            v.push(s);
        }
        r.finish()?;
        Ok(v)
    }
    let sa = scan(a)?;
    let sb = scan(b)?;
    let mut out = Vec::new();
    let n = sa.len().max(sb.len());
    for i in 0..n {
        match (sa.get(i), sb.get(i)) {
            (Some(&(id, pa)), Some(&(_, pb))) => {
                if pa == pb {
                    out.push(SectionDiff::Same {
                        id,
                        bytes: pa.len(),
                    });
                } else {
                    let first_diff = pa
                        .iter()
                        .zip(pb.iter())
                        .position(|(x, y)| x != y)
                        .unwrap_or_else(|| pa.len().min(pb.len()));
                    out.push(SectionDiff::Differ {
                        id,
                        a_bytes: pa.len(),
                        b_bytes: pb.len(),
                        first_diff,
                    });
                }
            }
            (Some(&(id, _)), None) => out.push(SectionDiff::OnlyInA { id }),
            (None, Some(&(id, _))) => out.push(SectionDiff::OnlyInB { id }),
            (None, None) => unreachable!(),
        }
    }
    Ok(out)
}

/// [`diff_bytes`] on two files, with errors mapped to structured
/// [`SimError`]s carrying the offending path.
pub fn diff_files(a: &Path, b: &Path) -> Result<Vec<SectionDiff>, SimError> {
    let read = |p: &Path| -> Result<Vec<u8>, SimError> {
        std::fs::read(p).map_err(|e| SimError::Io {
            path: p.display().to_string(),
            detail: e.to_string(),
        })
    };
    let ba = read(a)?;
    let bb = read(b)?;
    // Attribute a format error to whichever file is malformed.
    validate_bytes(&ba).map_err(|e| ckpt_to_sim(&a.display().to_string(), e))?;
    validate_bytes(&bb).map_err(|e| ckpt_to_sim(&b.display().to_string(), e))?;
    diff_bytes(&ba, &bb).map_err(|e| ckpt_to_sim(&a.display().to_string(), e))
}

impl Machine {
    /// Snapshot this machine into `nwckpt-v1` bytes. `spec` must be the
    /// workload spec the machine was built from (see
    /// [`machine_to_bytes`]).
    pub fn checkpoint(&self, spec: &str) -> Vec<u8> {
        machine_to_bytes(spec, self)
    }

    /// Rebuild a machine from a snapshot produced by
    /// [`Machine::checkpoint`].
    pub fn restore(bytes: &[u8]) -> Result<(CkptMeta, Machine), SimError> {
        machine_from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::RunOutcome;
    use nw_apps::AppId;

    fn cfg() -> MachineConfig {
        MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.05)
    }

    fn machine() -> Machine {
        Machine::try_new(cfg(), AppId::Sor).unwrap()
    }

    #[test]
    fn round_trip_mid_run_finishes_identically() {
        // Reference: run to completion in one go.
        let mut reference = machine();
        let expected = reference.try_run().unwrap();

        // Snapshot after a prefix, restore, finish: identical metrics.
        let mut m = machine();
        assert!(matches!(
            m.try_run_events(200).unwrap(),
            RunOutcome::Paused
        ));
        let bytes = m.checkpoint("sor");
        let (meta, mut restored) = Machine::restore(&bytes).unwrap();
        assert_eq!(meta.spec, "sor");
        assert_eq!(meta.app, "sor");
        assert_eq!(meta.events, 200);
        let got = match restored.try_run_events(u64::MAX).unwrap() {
            RunOutcome::Done(metrics) => *metrics,
            RunOutcome::Paused => panic!("unbounded run paused"),
        };
        assert_eq!(got, expected);
    }

    #[test]
    fn snapshot_is_canonical() {
        // Save → restore → save produces byte-identical files.
        let mut m = machine();
        let _ = m.try_run_events(300).unwrap();
        let bytes = m.checkpoint("sor");
        let (_, restored) = Machine::restore(&bytes).unwrap();
        let again = restored.checkpoint("sor");
        assert_eq!(bytes, again);
        for d in diff_bytes(&bytes, &again).unwrap() {
            assert!(d.is_same(), "{d:?}");
        }
    }

    #[test]
    fn validate_lists_all_sections() {
        let mut m = machine();
        let _ = m.try_run_events(200).unwrap();
        let s = validate_bytes(&m.checkpoint("sor")).unwrap();
        let ids: Vec<u32> = s.sections.iter().map(|x| x.id).collect();
        assert_eq!(ids, (1..=11).collect::<Vec<u32>>());
        assert_eq!(s.meta.events, 200);
        assert!(s.sections.iter().all(|x| x.name != "UNKNOWN"));
    }

    #[test]
    fn adaptive_checkpoints_append_prefetch_section() {
        let cfg =
            MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Adaptive, 0.05);
        let mut m = Machine::try_new(cfg, AppId::Sor).unwrap();
        let _ = m.try_run_events(200).unwrap();
        let s = validate_bytes(&m.checkpoint("sor")).unwrap();
        let ids: Vec<u32> = s.sections.iter().map(|x| x.id).collect();
        assert_eq!(ids, (1..=12).collect::<Vec<u32>>());
        assert!(s.sections.iter().all(|x| x.name != "UNKNOWN"));
    }

    #[test]
    fn diff_pinpoints_drift() {
        let mut a = machine();
        let _ = a.try_run_events(200).unwrap();
        let mut b = machine();
        let _ = b.try_run_events(400).unwrap();
        let diffs = diff_bytes(&a.checkpoint("sor"), &b.checkpoint("sor")).unwrap();
        // CONFIG must agree; ENGINE must differ (different event counts).
        assert!(diffs
            .iter()
            .any(|d| d.id() == sections::CONFIG && d.is_same()));
        assert!(diffs
            .iter()
            .any(|d| d.id() == sections::ENGINE && !d.is_same()));
    }

    #[test]
    fn corrupt_bytes_are_structured_errors() {
        let mut m = machine();
        let _ = m.try_run_events(200).unwrap();
        let good = m.checkpoint("sor");

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        match machine_from_bytes(&flipped) {
            Err(SimError::CheckpointCorrupt { detail, .. }) => {
                assert!(detail.contains("checksum"), "{detail}")
            }
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("accepted bit-flipped bytes"),
        }

        match machine_from_bytes(&good[..good.len() / 2]) {
            Err(SimError::CheckpointCorrupt { .. }) => {}
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("accepted truncated bytes"),
        }
    }
}
