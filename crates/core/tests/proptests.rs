//! Property-based tests over whole-machine simulations (small scale
//! so each case stays fast).

use nw_apps::AppId;
use nwcache::{run_app, MachineConfig, MachineKind, PrefetchMode};
use proptest::prelude::*;

fn apps() -> impl Strategy<Value = AppId> {
    prop_oneof![
        Just(AppId::Sor),
        Just(AppId::Radix),
        Just(AppId::Mg),
        Just(AppId::Lu),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Simulations are deterministic functions of (config, app, seed).
    #[test]
    fn deterministic(app in apps(), seed in 0u64..1000,
                     kind in prop_oneof![Just(MachineKind::Standard), Just(MachineKind::NwCache)]) {
        let mut cfg = MachineConfig::scaled_paper(kind, PrefetchMode::Naive, 0.05);
        cfg.seed = seed;
        let a = run_app(&cfg, app);
        let b = run_app(&cfg, app);
        prop_assert_eq!(a.exec_time, b.exec_time);
        prop_assert_eq!(a.page_faults, b.page_faults);
        prop_assert_eq!(a.swap_outs, b.swap_outs);
        prop_assert_eq!(a.mesh_bytes, b.mesh_bytes);
        prop_assert_eq!(a.shootdowns, b.shootdowns);
    }

    /// Per-processor breakdowns sum (approximately) to the processor's
    /// execution time and never exceed the machine execution time.
    #[test]
    fn breakdown_consistency(app in apps(), seed in 0u64..1000) {
        let mut cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.05);
        cfg.seed = seed;
        let m = run_app(&cfg, app);
        for b in &m.breakdown {
            prop_assert!(b.total() <= m.exec_time + 1000,
                "breakdown {} beyond exec {}", b.total(), m.exec_time);
        }
    }

    /// Fault accounting: every fault is classified into exactly one
    /// latency tally, and ring hits only occur with a ring.
    #[test]
    fn fault_classification_total(app in apps(),
                                  kind in prop_oneof![Just(MachineKind::Standard), Just(MachineKind::NwCache)]) {
        let cfg = MachineConfig::scaled_paper(kind, PrefetchMode::Naive, 0.05);
        let m = run_app(&cfg, app);
        let classified = m.fault_latency_disk_hit.count()
            + m.fault_latency_disk_miss.count()
            + m.fault_latency_ring.count();
        prop_assert_eq!(classified, m.page_faults);
        if kind == MachineKind::Standard {
            prop_assert_eq!(m.ring_hits, 0);
        }
    }

    /// More memory never makes the machine dramatically slower (same
    /// app, same machine, frames doubled).
    #[test]
    fn more_memory_not_catastrophic(app in apps()) {
        let small = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Naive, 0.05);
        let mut big = small.clone();
        big.memory_per_node *= 2;
        let m_small = run_app(&small, app);
        let m_big = run_app(&big, app);
        // Allow slack for timing noise, but doubling memory must not
        // double the runtime.
        prop_assert!(m_big.exec_time < m_small.exec_time * 2,
            "big {} vs small {}", m_big.exec_time, m_small.exec_time);
    }

    /// Swap-outs never exceed page faults plus the initial dirty
    /// working set (each swap requires a prior dirtying fault).
    #[test]
    fn swap_outs_bounded_by_faults(app in apps(),
                                   kind in prop_oneof![Just(MachineKind::Standard), Just(MachineKind::NwCache)]) {
        let cfg = MachineConfig::scaled_paper(kind, PrefetchMode::Naive, 0.05);
        let m = run_app(&cfg, app);
        prop_assert!(m.swap_outs <= m.page_faults + 1024,
            "swaps {} vs faults {}", m.swap_outs, m.page_faults);
    }
}
