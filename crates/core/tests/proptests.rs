//! Randomized property tests over whole-machine simulations (small
//! scale so each case stays fast), driven by the in-tree
//! deterministic [`Pcg32`].

use nw_apps::AppId;
use nw_sim::Pcg32;
use nwcache::{run_app, MachineConfig, MachineKind, PrefetchMode};

const APPS: [AppId; 4] = [AppId::Sor, AppId::Radix, AppId::Mg, AppId::Lu];
const KINDS: [MachineKind; 2] = [MachineKind::Standard, MachineKind::NwCache];
const CASES: u64 = 8;

fn pick<T: Copy>(rng: &mut Pcg32, xs: &[T]) -> T {
    xs[rng.gen_below(xs.len() as u32) as usize]
}

/// Simulations are deterministic functions of (config, app, seed).
#[test]
fn deterministic() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0xC07E, case);
        let app = pick(&mut rng, &APPS);
        let kind = pick(&mut rng, &KINDS);
        let mut cfg = MachineConfig::scaled_paper(kind, PrefetchMode::Naive, 0.05);
        cfg.seed = rng.gen_range(0, 1000);
        let a = run_app(&cfg, app);
        let b = run_app(&cfg, app);
        assert_eq!(a.exec_time, b.exec_time, "case {case}");
        assert_eq!(a.page_faults, b.page_faults, "case {case}");
        assert_eq!(a.swap_outs, b.swap_outs, "case {case}");
        assert_eq!(a.mesh_bytes, b.mesh_bytes, "case {case}");
        assert_eq!(a.shootdowns, b.shootdowns, "case {case}");
    }
}

/// Per-processor breakdowns sum (approximately) to the processor's
/// execution time and never exceed the machine execution time.
#[test]
fn breakdown_consistency() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0xC07F, case);
        let app = pick(&mut rng, &APPS);
        let mut cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.05);
        cfg.seed = rng.gen_range(0, 1000);
        let m = run_app(&cfg, app);
        for b in &m.breakdown {
            assert!(
                b.total() <= m.exec_time + 1000,
                "case {case}: breakdown {} beyond exec {}",
                b.total(),
                m.exec_time
            );
        }
    }
}

/// Fault accounting: every fault is classified into exactly one
/// latency tally, and ring hits only occur with a ring.
#[test]
fn fault_classification_total() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0xC080, case);
        let app = pick(&mut rng, &APPS);
        let kind = pick(&mut rng, &KINDS);
        let cfg = MachineConfig::scaled_paper(kind, PrefetchMode::Naive, 0.05);
        let m = run_app(&cfg, app);
        let classified = m.fault_latency_disk_hit.count()
            + m.fault_latency_disk_miss.count()
            + m.fault_latency_ring.count();
        assert_eq!(classified, m.page_faults, "case {case}");
        if kind == MachineKind::Standard {
            assert_eq!(m.ring_hits, 0, "case {case}");
        }
    }
}

/// More memory never makes the machine dramatically slower (same app,
/// same machine, frames doubled).
#[test]
fn more_memory_not_catastrophic() {
    for case in 0..CASES.min(4) {
        let mut rng = Pcg32::new(0xC081, case);
        let app = pick(&mut rng, &APPS);
        let small = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Naive, 0.05);
        let mut big = small.clone();
        big.memory_per_node *= 2;
        let m_small = run_app(&small, app);
        let m_big = run_app(&big, app);
        // Allow slack for timing noise, but doubling memory must not
        // double the runtime.
        assert!(
            m_big.exec_time < m_small.exec_time * 2,
            "case {case}: big {} vs small {}",
            m_big.exec_time,
            m_small.exec_time
        );
    }
}

/// Swap-outs never exceed page faults plus the initial dirty working
/// set (each swap requires a prior dirtying fault).
#[test]
fn swap_outs_bounded_by_faults() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0xC082, case);
        let app = pick(&mut rng, &APPS);
        let kind = pick(&mut rng, &KINDS);
        let cfg = MachineConfig::scaled_paper(kind, PrefetchMode::Naive, 0.05);
        let m = run_app(&cfg, app);
        assert!(
            m.swap_outs <= m.page_faults + 1024,
            "case {case}: swaps {} vs faults {}",
            m.swap_outs,
            m.page_faults
        );
    }
}
