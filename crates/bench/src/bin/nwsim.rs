//! `nwsim` — run and inspect single NWCache simulations.
//!
//! ```text
//! nwsim run     --app sor --machine nwcache --prefetch naive [--scale S]
//!               [--topo SPEC] [--seed N] [--min-free N] [--disk-cache N]
//!               [--ring-slots N] [--checkpoint PATH] [--checkpoint-every N]
//!               [--stop-after N] [--sim-threads K] [--json]
//! nwsim resume  CKPT [--checkpoint PATH] [--checkpoint-every N]
//!               [--stop-after N] [--sim-threads K] [--json]
//! nwsim ckpt-validate PATH
//! nwsim ckpt-diff A B
//! nwsim trace   <app> [--machine M] [--prefetch P] [--scale S] [--seed N]
//!               [--trace-out run.json] [--sample-interval N]
//!               [--trace-capacity N] [--text]
//! nwsim trace-validate PATH
//! nwsim compare --app sor --prefetch naive [--scale S] [--jobs N]
//! nwsim bench   [--quick] [--out PATH] [--baseline PATH] [--check-regress PCT]
//!               [--sim-threads K]
//! nwsim bench-validate PATH
//! nwsim apps
//! nwsim config  [--machine M] [--prefetch P] [--topo SPEC]
//! nwsim workload gen      --spec SPEC [--procs N] [--seed N] [--out PATH] [--binary]
//! nwsim workload record   --app APP [--procs N] [--scale S] [--seed N]
//!                         [--out PATH] [--binary]
//! nwsim workload replay   --trace PATH [--machine M] [--prefetch P]
//!                         [--scale S] [--json]
//! nwsim workload describe PATH
//! nwsim serve   [--addr H:P] [--job-slots N] [--warm-dir D] [--warm-capacity N]
//!               [--autosave-dir D] [--chunk-events N] [--sim-threads K]
//! nwsim client  <run|sweep|metrics|ping|shutdown> --addr H:P [--app SPEC]
//!               [--machine M | --machines a,b,c] [--prefetch P] [--scale S]
//!               [--seed N] [--topo SPEC] [--warm-events N] [--verify-warm]
//!               [--deadline-ms N] [--progress-every N] [--trace-out PATH]
//! ```
//!
//! `nwsim serve` keeps a simulator process resident (DESIGN.md §18):
//! clients submit run/sweep jobs over TCP, stream progress, and read
//! back the same JSON the batch commands print — byte-identical, so
//! `nwsim client run --json`-style output can be `cmp`'d against
//! `nwsim run --json`. `--warm-events N` warm-starts repeat jobs from
//! the server's checkpoint cache; `--verify-warm` makes the server
//! prove the cached state matches a cold warmup bit-for-bit. The
//! server's port also answers plain HTTP `GET /metrics` scrapes.
//!
//! `nwsim trace` runs one simulation with the observer attached and
//! writes a Chrome trace-event JSON file loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`; `--text` prints
//! a compact text timeline instead of requiring a viewer.
//! `nwsim trace-validate` checks such a file with the in-tree
//! validator (no external tooling needed in CI).
//!
//! `nwsim workload` is the workload engine's front door: `gen`
//! materializes a stochastic scenario into an `nwtrace-v1` file,
//! `record` captures any app's action streams (simulation-free —
//! streams are pure functions of app/procs/scale/seed), `replay` runs
//! a trace as an ordinary app, and `describe` decodes, validates, and
//! summarizes a trace file. Everywhere an `--app` is accepted, a
//! `workload:<trace-file>` or `workload:gen:<spec>` spec works too.
//!
//! `--topo SPEC` (run/trace/config) swaps the paper's 8-node machine
//! for a generated topology, e.g.
//! `mesh=8x8,io=corners,rings=2,shard=region,dirshards=4` — see
//! DESIGN.md §17 for the grammar.
//!
//! `--jobs N` bounds the sweep worker threads for multi-run commands
//! (`0` = one per core); results are identical at any job count.
//!
//! `--sim-threads K` runs each simulation's event loop on K worker
//! threads (`0` = one per core, `1` = the serial engine). Delivery
//! order is bit-identical at any K — summaries, metrics and
//! checkpoints do not change, only wall-clock time does. For `bench`
//! it also sets the `pdes_large_par` kernel's worker count.
//!
//! Checkpointing: `run --checkpoint ckpt.nwckpt --checkpoint-every N`
//! autosaves an `nwckpt-v1` snapshot every N dispatched events
//! (atomically — temp + rename, so a crash mid-save never leaves a
//! torn file). `resume CKPT` restores the snapshot and continues the
//! run; the resumed run's final summary is bit-identical to an
//! uninterrupted one. `--stop-after N` exits *without* saving once N
//! events have been dispatched — a deterministic simulated crash for
//! the crash-injection harness. `ckpt-validate` structurally checks a
//! checkpoint (checksum, section framing, META header) and
//! `ckpt-diff` compares two checkpoints section by section.

use nw_apps::AppId;
use nw_server::proto::code_name;
use nw_server::{Connection, JobKind, JobSpec, Response, ServeOptions, Server};
use nw_sim::atomic_write::write_atomic;
use nwcache::checkpoint::{self, SectionDiff};
use nwcache::config::{MachineConfig, MachineKind, PrefetchMode, RunParams};
use nwcache::workload::{Scenario, Trace};
use nwcache::{AppSel, RunOutcome, SimError};
use std::path::Path;

fn parse_machine(s: &str) -> MachineKind {
    MachineKind::parse(s)
        .unwrap_or_else(|| die(&format!("unknown machine '{s}' (standard|nwcache|dcd)")))
}

/// Parse a prefetch spec: `optimal|naive|window|adaptive[:window]`,
/// where the optional suffix sets the adaptive detector's sliding
/// window (e.g. `adaptive:16`).
fn parse_prefetch(s: &str) -> (PrefetchMode, Option<usize>) {
    PrefetchMode::parse_spec(s).unwrap_or_else(|e| die(&e))
}

/// Usage and flag-parse errors: always [`nwcache::ExitCode::Validation`].
fn die(msg: &str) -> ! {
    eprintln!("nwsim: {msg}");
    std::process::exit(nwcache::ExitCode::Validation.code())
}

/// Simulation-layer errors: the exit code is the error's
/// [`SimError::exit_code`] (see DESIGN.md §18 for the full table), so
/// validation failures, simulation faults, and corrupt checkpoints
/// are distinguishable by scripts — and by the server, which maps the
/// same codes onto `nwserve-v1` `JobError` frames.
fn die_err(e: &SimError) -> ! {
    eprintln!("nwsim: {e}");
    std::process::exit(e.exit_code().code())
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let k = raw[i].clone();
            if !k.starts_with("--") {
                die(&format!("unexpected argument '{k}'"));
            }
            // Boolean flags take no value and may appear last.
            if k == "--json"
                || k == "--quick"
                || k == "--text"
                || k == "--binary"
                || k == "--verify-warm"
            {
                flags.push((k, String::new()));
                i += 1;
                continue;
            }
            let v = raw
                .get(i + 1)
                .cloned()
                .unwrap_or_else(|| die(&format!("flag {k} needs a value")));
            flags.push((k, v));
            i += 2;
        }
        Args { flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == key)
    }
}

/// The shared `--machine/--prefetch/--scale/--seed/--topo` subset of
/// the flags, as the [`RunParams`] value the server uses for the same
/// job fields — one lowering path, so `nwsim run` and a server job
/// with the same parameters build the identical machine.
fn run_params(args: &Args) -> RunParams {
    let (prefetch, prefetch_window) = parse_prefetch(args.get("--prefetch").unwrap_or("naive"));
    RunParams {
        machine: parse_machine(args.get("--machine").unwrap_or("nwcache")),
        prefetch,
        prefetch_window,
        scale: args
            .get("--scale")
            .map(|s| s.parse().unwrap_or_else(|_| die("bad --scale")))
            .unwrap_or(0.25),
        seed: args
            .get("--seed")
            .map(|v| v.parse().unwrap_or_else(|_| die("bad --seed"))),
        topo: args.get("--topo").map(String::from),
    }
}

fn build_config(args: &Args) -> MachineConfig {
    let mut cfg = run_params(args).to_config().unwrap_or_else(|e| match &e {
        // Keep the flag name in topology errors.
        SimError::BadConfig(msg) if msg.starts_with("bad topo:") => {
            die(&msg.replacen("bad topo:", "bad --topo:", 1))
        }
        _ => die_err(&e),
    });
    // Direct config overrides on top of the lowered parameters.
    let mut overridden = false;
    if let Some(v) = args.get("--min-free") {
        cfg.min_free_frames = v.parse().unwrap_or_else(|_| die("bad --min-free"));
        overridden = true;
    }
    if let Some(v) = args.get("--disk-cache") {
        cfg.disk_cache_pages = v.parse().unwrap_or_else(|_| die("bad --disk-cache"));
        overridden = true;
    }
    if let Some(v) = args.get("--ring-slots") {
        cfg.ring_slots_per_channel = v.parse().unwrap_or_else(|_| die("bad --ring-slots"));
        overridden = true;
    }
    if overridden {
        if let Err(e) = cfg.validate() {
            die(&format!("invalid configuration: {e}"));
        }
    }
    cfg
}

fn app_of(args: &Args) -> AppSel {
    let name = args.get("--app").unwrap_or("sor");
    AppSel::parse(name).unwrap_or_else(|e| die_err(&e))
}

/// Write `trace` to `path` in the encoding `--binary` selects, then
/// report what landed on disk.
fn write_trace(trace: &Trace, path: &str, binary: bool) {
    let bytes = if binary {
        trace.encode_binary()
    } else {
        trace.encode_text().into_bytes()
    };
    write_atomic(Path::new(path), &bytes)
        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    let s = trace.stats();
    eprintln!(
        "nwsim workload: wrote {path} ({} bytes, {}) — '{}', {} procs, {} records",
        bytes.len(),
        if binary { "binary" } else { "text" },
        trace.name,
        trace.procs.len(),
        s.records,
    );
}

/// `nwsim workload <gen|record|replay|describe>` — the workload
/// engine's CLI surface.
fn workload_cmd(argv: &[String]) {
    let Some(sub) = argv.first() else {
        die("usage: nwsim workload <gen|record|replay|describe> [flags]")
    };
    if sub == "describe" {
        // Positional: `nwsim workload describe PATH`.
        let path = argv.get(1).unwrap_or_else(|| die("workload describe needs a file path"));
        let bytes =
            std::fs::read(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        let trace = Trace::decode(&bytes).unwrap_or_else(|e| die(&format!("{path}: {e}")));
        trace.validate().unwrap_or_else(|e| die(&format!("{path}: invalid trace: {e}")));
        let s = trace.stats();
        println!("{path}: valid nwtrace-v1");
        println!("name:       {}", trace.name);
        println!("procs:      {}", trace.procs.len());
        println!(
            "footprint:  {} bytes ({:.2} MB)",
            trace.data_bytes,
            trace.data_bytes as f64 / (1024.0 * 1024.0)
        );
        println!(
            "records:    {} ({} reads, {} writes, {} computes, {} barriers)",
            s.records, s.reads, s.writes, s.computes, s.barriers
        );
        return;
    }
    let args = Args::parse(&argv[1..]);
    let binary = args.has("--binary");
    let out = args.get("--out").unwrap_or("workload.nwtrace");
    match sub.as_str() {
        "gen" => {
            let spec = args
                .get("--spec")
                .unwrap_or_else(|| die("workload gen needs --spec (see Scenario::parse)"));
            let sc =
                Scenario::parse(spec).unwrap_or_else(|e| die(&format!("bad --spec: {e}")));
            sc.validate().unwrap_or_else(|e| die(&format!("invalid scenario: {e}")));
            let procs: usize = args
                .get("--procs")
                .map(|v| v.parse().unwrap_or_else(|_| die("bad --procs")))
                .unwrap_or(8);
            if procs == 0 {
                die("--procs must be positive");
            }
            // Default matches the machine's default workload seed, so
            // gen + replay reproduces `--app workload:gen:SPEC`.
            let seed: u64 = args
                .get("--seed")
                .map(|v| v.parse().unwrap_or_else(|_| die("bad --seed")))
                .unwrap_or_else(|| MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive).seed);
            write_trace(&sc.to_trace(procs, seed), out, binary);
        }
        "record" => {
            let mut cfg = build_config(&args);
            if let Some(v) = args.get("--procs") {
                cfg.nodes = v.parse().unwrap_or_else(|_| die("bad --procs"));
                cfg.io_nodes = (cfg.nodes / 2).max(1);
                cfg.ring_channels = cfg.nodes as usize;
            }
            let sel = app_of(&args);
            let trace = nwcache::workload::record(&cfg, &sel)
                .unwrap_or_else(|e| die_err(&e));
            write_trace(&trace, out, binary);
        }
        "replay" => {
            let path = args
                .get("--trace")
                .unwrap_or_else(|| die("workload replay needs --trace PATH"));
            let sel = AppSel::parse(&format!("workload:{path}"))
                .unwrap_or_else(|e| die_err(&e));
            let cfg = build_config(&args);
            let m = nwcache::try_run_sel(&cfg, &sel).unwrap_or_else(|e| die_err(&e));
            if args.has("--json") {
                println!("{}", m.summary().to_json());
            } else {
                print_run(&m);
            }
        }
        other => die(&format!("unknown workload command '{other}'")),
    }
}

fn print_run(m: &nwcache::RunMetrics) {
    println!("app:        {} ({} machine, {} prefetching)", m.app, m.machine, m.prefetch);
    println!(
        "exec time:  {} pcycles ({:.2} simulated ms)",
        m.exec_time,
        m.exec_time as f64 * 5.0 / 1e6
    );
    println!(
        "faults:     {} total | {} from ring ({:.1}%)",
        m.page_faults,
        m.ring_hits,
        m.ring_hit_rate()
    );
    println!(
        "swap-outs:  {} (mean {:.0} pcycles, max {}) | NACKs {}",
        m.swap_outs,
        m.swap_out_time.mean(),
        m.swap_out_time.max().unwrap_or(0),
        m.swap_nacks
    );
    println!(
        "combining:  {:.2} pages/disk write ({} writes)",
        m.write_combining.mean(),
        m.write_combining.count()
    );
    println!(
        "fault lat:  disk-hit {:.0} | disk-miss {:.0} | ring {:.0} pcycles",
        m.fault_latency_disk_hit.mean(),
        m.fault_latency_disk_miss.mean(),
        m.fault_latency_ring.mean()
    );
    println!(
        "traffic:    mesh {:.2} MB / {} msgs | shootdowns {}",
        m.mesh_bytes as f64 / 1e6,
        m.mesh_messages,
        m.shootdowns
    );
    let agg = m.total_breakdown();
    let t = agg.total().max(1) as f64;
    println!(
        "breakdown:  NoFree {:.1}% | Transit {:.1}% | Fault {:.1}% | TLB {:.1}% | Other {:.1}%",
        100.0 * agg.no_free as f64 / t,
        100.0 * agg.transit as f64 / t,
        100.0 * agg.fault as f64 / t,
        100.0 * agg.tlb as f64 / t,
        100.0 * agg.other as f64 / t
    );
}

/// Drive a machine to completion in checkpoint-sized chunks.
///
/// Every `every` dispatched events the machine pauses; if `ckpt` is
/// set, a snapshot is autosaved there (atomic temp + rename). With
/// `--stop-after N` the process exits *without saving* once N events
/// have been dispatched — the budget is clipped so the stop lands
/// exactly on N, strictly after the last autosave, which is what makes
/// the stop a faithful simulated crash. Returns `None` on such a stop.
fn run_chunked(
    mut m: nwcache::Machine,
    spec: &str,
    ckpt: Option<&str>,
    every: u64,
    stop_after: Option<u64>,
) -> Option<nwcache::RunMetrics> {
    loop {
        let dispatched = m.events_dispatched();
        if let Some(stop) = stop_after {
            if dispatched >= stop {
                eprintln!(
                    "nwsim: stopped after {dispatched} events without saving (simulated crash)"
                );
                return None;
            }
        }
        let budget = match stop_after {
            Some(stop) => every.min(stop - dispatched),
            None => every,
        };
        match m.try_run_events(budget) {
            Ok(RunOutcome::Done(metrics)) => return Some(*metrics),
            Ok(RunOutcome::Paused) => {
                if stop_after.is_some_and(|s| m.events_dispatched() >= s) {
                    eprintln!(
                        "nwsim: stopped after {} events without saving (simulated crash)",
                        m.events_dispatched()
                    );
                    return None;
                }
                if let Some(path) = ckpt {
                    checkpoint::save_file(Path::new(path), spec, &m)
                        .unwrap_or_else(|e| die_err(&e));
                    eprintln!(
                        "nwsim: checkpoint at {} events (t={}) -> {path}",
                        m.events_dispatched(),
                        m.exec_time()
                    );
                }
            }
            Err(e) => die_err(&e),
        }
    }
}

/// `nwsim serve` — run the long-lived simulation service (DESIGN.md
/// §18). Prints the bound address to stderr (port 0 picks a free
/// one), then serves until SIGTERM/SIGINT or a client `Shutdown`
/// frame, draining in-flight jobs to autosaved checkpoints.
fn serve_cmd(argv: &[String]) {
    let args = Args::parse(argv);
    if let Some(v) = args.get("--sim-threads") {
        let k: usize = v.parse().unwrap_or_else(|_| die("bad --sim-threads"));
        nwcache::machine::set_default_sim_threads(k);
    }
    let mut opts = ServeOptions::default();
    if let Some(v) = args.get("--addr") {
        opts.addr = v.to_string();
    }
    if let Some(v) = args.get("--job-slots") {
        opts.job_slots = v.parse().unwrap_or_else(|_| die("bad --job-slots"));
    }
    if let Some(v) = args.get("--warm-dir") {
        opts.warm_dir = Some(v.into());
    }
    if let Some(v) = args.get("--warm-capacity") {
        opts.warm_capacity = v.parse().unwrap_or_else(|_| die("bad --warm-capacity"));
    }
    if let Some(v) = args.get("--autosave-dir") {
        opts.autosave_dir = v.into();
    }
    if let Some(v) = args.get("--chunk-events") {
        opts.chunk_events = v.parse().unwrap_or_else(|_| die("bad --chunk-events"));
        if opts.chunk_events == 0 {
            die("--chunk-events must be positive");
        }
    }
    nw_server::install_signal_handlers();
    let server =
        Server::bind(opts).unwrap_or_else(|e| die(&format!("cannot bind listener: {e}")));
    let addr = server
        .local_addr()
        .unwrap_or_else(|e| die(&format!("cannot resolve bound address: {e}")));
    eprintln!("nwsim serve: listening on {addr}");
    let stats = server.run();
    eprintln!(
        "nwsim serve: drained — {} job(s) completed, {} failed, {} autosaved",
        stats.jobs_completed, stats.jobs_failed, stats.jobs_drained
    );
}

/// `nwsim client` — talk to a running `nwsim serve`. `run`/`sweep`
/// submit a job and print the final JSON to stdout (byte-identical to
/// `nwsim run --json` / the sweep summaries array); the process exit
/// code is the job's error code, so scripts treat a remote job
/// exactly like a local run.
fn client_cmd(argv: &[String]) {
    let Some(sub) = argv.first() else {
        die("usage: nwsim client <run|sweep|metrics|ping|shutdown> --addr HOST:PORT [flags]")
    };
    let args = Args::parse(&argv[1..]);
    let addr = args
        .get("--addr")
        .unwrap_or_else(|| die("client needs --addr HOST:PORT"));
    let mut conn = Connection::connect(addr)
        .unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
    let kind = match sub.as_str() {
        "ping" => {
            conn.ping()
                .unwrap_or_else(|e| die(&format!("ping failed: {e}")));
            eprintln!("nwsim client: pong from {addr}");
            return;
        }
        "metrics" => {
            let text = conn
                .metrics_text()
                .unwrap_or_else(|e| die(&format!("metrics failed: {e}")));
            print!("{text}");
            return;
        }
        "shutdown" => {
            conn.shutdown_server()
                .unwrap_or_else(|e| die(&format!("shutdown failed: {e}")));
            eprintln!("nwsim client: server at {addr} is draining");
            return;
        }
        "run" => JobKind::Run,
        "sweep" => JobKind::Sweep,
        other => die(&format!("unknown client command '{other}'")),
    };
    let machines: Vec<String> = match kind {
        JobKind::Run => vec![args.get("--machine").unwrap_or("nwcache").to_string()],
        JobKind::Sweep => args
            .get("--machines")
            .unwrap_or("standard,nwcache,dcd")
            .split(',')
            .map(str::to_string)
            .collect(),
    };
    // Validate the shared parameters locally for fast feedback; the
    // server re-validates with the same parsers.
    for m in &machines {
        parse_machine(m);
    }
    parse_prefetch(args.get("--prefetch").unwrap_or("naive"));
    let spec = JobSpec {
        kind,
        spec: args.get("--app").unwrap_or("sor").to_string(),
        machines,
        prefetch: args.get("--prefetch").unwrap_or("naive").to_string(),
        scale: args
            .get("--scale")
            .map(|s| s.parse().unwrap_or_else(|_| die("bad --scale")))
            .unwrap_or(0.25),
        seed: args
            .get("--seed")
            .map(|v| v.parse().unwrap_or_else(|_| die("bad --seed"))),
        topo: args.get("--topo").map(String::from),
        warmup_events: args
            .get("--warm-events")
            .map(|v| v.parse().unwrap_or_else(|_| die("bad --warm-events")))
            .unwrap_or(0),
        verify_warm: args.has("--verify-warm"),
        deadline_ms: args
            .get("--deadline-ms")
            .map(|v| v.parse().unwrap_or_else(|_| die("bad --deadline-ms")))
            .unwrap_or(0),
        progress_every: args
            .get("--progress-every")
            .map(|v| v.parse().unwrap_or_else(|_| die("bad --progress-every")))
            .unwrap_or(0),
        want_trace: args.has("--trace-out"),
    };
    let result = conn
        .run_job(&spec, |event| {
            if let Response::Progress {
                job,
                cell,
                cells,
                events,
                now,
            } = event
            {
                eprintln!(
                    "nwsim client: job {job} cell {}/{cells}: {events} events (t={now})",
                    cell + 1
                );
            }
        })
        .unwrap_or_else(|e| die(&format!("connection to {addr} failed mid-job: {e}")));
    if let Some((path, events)) = &result.drained {
        eprintln!(
            "nwsim client: job {} drained by server shutdown at {events} events; \
             server autosaved {path} (finish it with `nwsim resume`)",
            result.job
        );
        return;
    }
    if let Some(msg) = &result.message {
        eprintln!(
            "nwsim client: job {} failed ({}): {msg}",
            result.job,
            code_name(result.code)
        );
        std::process::exit(result.code.min(i32::MAX as u64) as i32);
    }
    if result.warm_hit {
        eprintln!("nwsim client: warm-start cache hit — warmup replayed from checkpoint");
    }
    if let Some(out) = args.get("--trace-out") {
        match &result.trace_json {
            Some(json) => {
                write_atomic(Path::new(out), json.as_bytes())
                    .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
                eprintln!("nwsim client: wrote {out}");
            }
            None => eprintln!("nwsim client: server sent no trace (sweep jobs are untraced)"),
        }
    }
    if let Some(json) = &result.json {
        println!("{json}");
    }
}

fn checkpoint_flags(args: &Args) -> (Option<u64>, u64) {
    let stop_after = args
        .get("--stop-after")
        .map(|v| v.parse().unwrap_or_else(|_| die("bad --stop-after")));
    let every: u64 = args
        .get("--checkpoint-every")
        .map(|v| v.parse().unwrap_or_else(|_| die("bad --checkpoint-every")))
        .unwrap_or(10_000);
    if every == 0 {
        die("--checkpoint-every must be positive");
    }
    (stop_after, every)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        die("usage: nwsim <run|resume|ckpt-validate|ckpt-diff|trace|trace-validate|compare|bench|bench-validate|apps|config|workload|serve|client> [flags]")
    };
    if cmd == "resume" {
        // Positional: `nwsim resume CKPT [flags]`.
        let path = argv.get(1).unwrap_or_else(|| die("resume needs a checkpoint path"));
        let args = Args::parse(&argv[2..]);
        let (meta, m) =
            checkpoint::load_file(Path::new(path)).unwrap_or_else(|e| die_err(&e));
        eprintln!(
            "nwsim resume: '{}' at {} events (t={}) from {path}",
            meta.app, meta.events, meta.now
        );
        let (stop_after, every) = checkpoint_flags(&args);
        let Some(metrics) = run_chunked(m, &meta.spec, args.get("--checkpoint"), every, stop_after)
        else {
            return;
        };
        if args.has("--json") {
            println!("{}", metrics.summary().to_json());
        } else {
            print_run(&metrics);
        }
        return;
    }
    if cmd == "ckpt-validate" {
        // Positional: `nwsim ckpt-validate PATH`.
        let path = argv.get(1).unwrap_or_else(|| die("ckpt-validate needs a file path"));
        let s = checkpoint::validate_file(Path::new(path))
            .unwrap_or_else(|e| die_err(&e));
        println!("{path}: valid nwckpt-v1 ({} bytes)", s.file_bytes);
        println!("workload:  {} (spec '{}')", s.meta.app, s.meta.spec);
        println!("progress:  {} events, t={} pcycles", s.meta.events, s.meta.now);
        println!("sections:");
        for sec in &s.sections {
            println!("  {:>2} {:<8} {:>9} bytes", sec.id, sec.name, sec.bytes);
        }
        return;
    }
    if cmd == "ckpt-diff" {
        // Positional: `nwsim ckpt-diff A B`. Exits 1 when they differ.
        let a = argv.get(1).unwrap_or_else(|| die("ckpt-diff needs two checkpoint paths"));
        let b = argv.get(2).unwrap_or_else(|| die("ckpt-diff needs two checkpoint paths"));
        let diffs = checkpoint::diff_files(Path::new(a), Path::new(b))
            .unwrap_or_else(|e| die_err(&e));
        let mut differing = 0;
        for d in &diffs {
            let name = nwcache::checkpoint::sections::name(d.id());
            match d {
                SectionDiff::Same { bytes, .. } => {
                    println!("  same    {name:<8} ({bytes} bytes)");
                }
                SectionDiff::Differ {
                    a_bytes,
                    b_bytes,
                    first_diff,
                    ..
                } => {
                    differing += 1;
                    println!(
                        "  DIFFER  {name:<8} ({a_bytes} vs {b_bytes} bytes, \
                         first difference at payload byte {first_diff})"
                    );
                }
                SectionDiff::OnlyInA { .. } => {
                    differing += 1;
                    println!("  DIFFER  {name:<8} (only in {a})");
                }
                SectionDiff::OnlyInB { .. } => {
                    differing += 1;
                    println!("  DIFFER  {name:<8} (only in {b})");
                }
            }
        }
        if differing == 0 {
            println!("{a} and {b} are identical");
        } else {
            println!("{a} and {b} differ in {differing} section(s)");
            std::process::exit(1);
        }
        return;
    }
    if cmd == "workload" {
        workload_cmd(&argv[1..]);
        return;
    }
    if cmd == "serve" {
        serve_cmd(&argv[1..]);
        return;
    }
    if cmd == "client" {
        client_cmd(&argv[1..]);
        return;
    }
    if cmd == "bench-validate" {
        // Positional: `nwsim bench-validate PATH`.
        let path = argv.get(1).unwrap_or_else(|| die("bench-validate needs a file path"));
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        match nwcache::hotbench::validate_bench_json(&json) {
            Ok(()) => {
                println!("{path}: valid nwcache-bench-v1");
                return;
            }
            Err(e) => die(&format!("{path}: {e}")),
        }
    }
    if cmd == "trace-validate" {
        // Positional: `nwsim trace-validate PATH`.
        let path = argv.get(1).unwrap_or_else(|| die("trace-validate needs a file path"));
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        match nwcache::observe::validate_chrome_trace(&json) {
            Ok(s) => {
                println!(
                    "{path}: valid chrome trace — {} events ({} spans, {} instants, \
                     {} counter samples, {} metadata) across {} track groups",
                    s.events, s.spans, s.instants, s.counters, s.metadata,
                    s.pids.len()
                );
                return;
            }
            Err(e) => die(&format!("{path}: {e}")),
        }
    }
    // `nwsim trace <app>` takes the application as a positional
    // argument; rewrite it into `--app` form for the flag parser.
    let mut flagv: Vec<String> = argv[1..].to_vec();
    if cmd == "trace" {
        if let Some(first) = flagv.first().cloned() {
            if !first.starts_with("--") {
                flagv.splice(0..1, ["--app".to_string(), first]);
            }
        }
    }
    let args = Args::parse(&flagv);
    if let Some(v) = args.get("--jobs") {
        nwcache::sweep::set_jobs(v.parse().unwrap_or_else(|_| die("bad --jobs")));
    }
    if let Some(v) = args.get("--sim-threads") {
        let k: usize = v.parse().unwrap_or_else(|_| die("bad --sim-threads"));
        nwcache::machine::set_default_sim_threads(k);
    }
    match cmd.as_str() {
        "run" => {
            let cfg = build_config(&args);
            let sel = app_of(&args);
            let chunked = args.has("--checkpoint")
                || args.has("--checkpoint-every")
                || args.has("--stop-after");
            let m = if chunked {
                // The original spec string is stored in the checkpoint
                // META so `resume` can rebuild the same workload.
                let spec = args.get("--app").unwrap_or("sor").to_string();
                let (stop_after, every) = checkpoint_flags(&args);
                let build = sel.build(&cfg).unwrap_or_else(|e| die_err(&e));
                let machine = nwcache::Machine::try_from_build(cfg, build)
                    .unwrap_or_else(|e| die_err(&e));
                let Some(m) =
                    run_chunked(machine, &spec, args.get("--checkpoint"), every, stop_after)
                else {
                    return;
                };
                m
            } else {
                nwcache::try_run_sel(&cfg, &sel).unwrap_or_else(|e| die_err(&e))
            };
            if args.has("--json") {
                println!("{}", m.summary().to_json());
            } else {
                print_run(&m);
            }
        }
        "trace" => {
            let cfg = build_config(&args);
            let sel = app_of(&args);
            let mut ocfg = nwcache::observe::ObserveConfig::default();
            if let Some(v) = args.get("--sample-interval") {
                ocfg.sample_interval =
                    v.parse().unwrap_or_else(|_| die("bad --sample-interval"));
                if ocfg.sample_interval == 0 {
                    die("--sample-interval must be positive");
                }
            }
            if let Some(v) = args.get("--trace-capacity") {
                ocfg.trace_capacity =
                    v.parse().unwrap_or_else(|_| die("bad --trace-capacity"));
                if ocfg.trace_capacity == 0 {
                    die("--trace-capacity must be positive");
                }
            }
            let build = sel.build(&cfg).unwrap_or_else(|e| die_err(&e));
            let mut m = nwcache::Machine::try_from_build(cfg, build)
                .unwrap_or_else(|e| die_err(&e));
            m.enable_observer(ocfg);
            let metrics = m.run();
            let data = m.take_observation().expect("observer was enabled");
            eprintln!(
                "nwsim trace: {} events emitted, {} retained, {} dropped (oldest) — exec {} pcycles",
                data.recorded,
                data.events.len(),
                data.dropped,
                metrics.exec_time
            );
            if args.has("--text") {
                println!("{}", data.to_text_timeline());
            }
            let path = args.get("--trace-out").unwrap_or("trace.json");
            write_atomic(Path::new(path), data.to_chrome_json().as_bytes())
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            eprintln!(
                "nwsim trace: wrote {path} — open it at https://ui.perfetto.dev or chrome://tracing"
            );
        }
        "compare" => {
            let sel = app_of(&args);
            let (prefetch, window) = parse_prefetch(args.get("--prefetch").unwrap_or("naive"));
            let scale: f64 = args
                .get("--scale")
                .map(|s| s.parse().unwrap_or_else(|_| die("bad --scale")))
                .unwrap_or(0.25);
            let grid: Vec<_> = [MachineKind::Standard, MachineKind::Dcd, MachineKind::NwCache]
                .into_iter()
                .map(|kind| {
                    let mut cfg = MachineConfig::scaled_paper(kind, prefetch, scale);
                    if let Some(w) = window {
                        cfg.prefetch_window = w;
                    }
                    (cfg, sel.clone())
                })
                .collect();
            let results: Vec<_> = nwcache::sweep::run_sel_grid(nwcache::sweep::jobs(), grid)
                .into_iter()
                .map(|r| r.unwrap_or_else(|e| die_err(&e)))
                .collect();
            let base = results[0].exec_time;
            println!(
                "{:<10} {:>14} {:>12} {:>12} {:>10}",
                "machine", "exec (pc)", "swap mean", "hit rate", "vs std"
            );
            for m in &results {
                println!(
                    "{:<10} {:>14} {:>12.0} {:>11.1}% {:>9.1}%",
                    m.machine,
                    m.exec_time,
                    m.swap_out_time.mean(),
                    m.ring_hit_rate(),
                    100.0 * (base as f64 - m.exec_time as f64) / base as f64
                );
            }
        }
        "bench" => {
            let quick = args.has("--quick");
            // Read (and vet) the baseline before spending minutes
            // timing kernels: a gate against a useless baseline
            // should fail fast, not after the run.
            let baseline = args.get("--baseline").map(|path| {
                std::fs::read_to_string(path)
                    .unwrap_or_else(|e| die(&format!("cannot read baseline {path}: {e}")))
            });
            if args.has("--check-regress") {
                // A --quick baseline's timings are noise: gating
                // against it passes and fails at random. Refuse it.
                if let Some(json) = &baseline {
                    if !nwcache::hotbench::baseline_is_authoritative(json) {
                        die(
                            "--check-regress: baseline was recorded with --quick \
                             (\"authoritative\": false); re-record it with a full \
                             `nwsim bench --out`",
                        );
                    }
                }
            }
            eprintln!(
                "nwsim bench: timing hot-path kernels ({}) ...",
                if quick { "quick" } else { "full" }
            );
            let par_threads = args
                .get("--sim-threads")
                .map(|v| v.parse().unwrap_or_else(|_| die("bad --sim-threads")))
                .unwrap_or(0);
            let mut report = nwcache::hotbench::BenchReport::run(quick, par_threads);
            if let Some(json) = &baseline {
                report.attach_baseline(json);
            }
            println!(
                "{:<22} {:>12} {:>14} {:>13} {:>9}",
                "kernel", "iters", "ns/iter", "events/sec", "speedup"
            );
            for k in &report.kernels {
                let eps = k
                    .events_per_sec()
                    .map(|e| format!("{e:.0}"))
                    .unwrap_or_else(|| "-".into());
                match k.speedup() {
                    Some(s) => println!(
                        "{:<22} {:>12} {:>14.1} {:>13} {:>8.2}x",
                        k.name, k.iters, k.ns_per_iter, eps, s
                    ),
                    None => println!(
                        "{:<22} {:>12} {:>14.1} {:>13} {:>9}",
                        k.name, k.iters, k.ns_per_iter, eps, "-"
                    ),
                }
            }
            if let Some(path) = args.get("--out") {
                write_atomic(Path::new(path), report.to_json().as_bytes())
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                eprintln!("nwsim bench: wrote {path}");
            }
            if let Some(pct) = args.get("--check-regress") {
                let pct: f64 = pct.parse().unwrap_or_else(|_| die("bad --check-regress"));
                if !report
                    .kernels
                    .iter()
                    .any(|k| k.baseline_ns_per_iter.is_some())
                {
                    die("--check-regress needs --baseline with matching kernels");
                }
                let mut failed = false;
                for k in &report.kernels {
                    let Some(b) = k.baseline_ns_per_iter else { continue };
                    let regress = (k.ns_per_iter / b.max(f64::MIN_POSITIVE) - 1.0) * 100.0;
                    if regress > pct {
                        eprintln!(
                            "nwsim bench: REGRESSION {}: {:.1} ns/iter vs baseline {:.1} (+{:.1}% > {:.1}%)",
                            k.name, k.ns_per_iter, b, regress, pct
                        );
                        failed = true;
                    } else {
                        eprintln!(
                            "nwsim bench: ok {}: {:+.1}% vs baseline (budget {:.1}%)",
                            k.name, regress, pct
                        );
                    }
                    // Event-throughput gate (tolerant of baselines
                    // predating the events_per_sec field).
                    let (Some(cur), Some(base)) = (k.events_per_sec(), k.baseline_events_per_sec)
                    else {
                        continue;
                    };
                    let drop = (1.0 - cur / base.max(f64::MIN_POSITIVE)) * 100.0;
                    if drop > pct {
                        eprintln!(
                            "nwsim bench: REGRESSION {}: {:.0} events/sec vs baseline {:.0} (-{:.1}% > {:.1}%)",
                            k.name, cur, base, drop, pct
                        );
                        failed = true;
                    }
                }
                if failed {
                    std::process::exit(1);
                }
            }
        }
        "apps" => {
            println!("{:<8} description", "name");
            for app in AppId::ALL {
                let b = nw_apps::build(app, 8, 1.0, 0);
                println!(
                    "{:<8} {:.2} MB shared data",
                    app.name(),
                    b.data_bytes as f64 / (1024.0 * 1024.0)
                );
            }
        }
        "config" => {
            let cfg = build_config(&args);
            println!("{cfg:#?}");
        }
        other => die(&format!("unknown command '{other}'")),
    }
}
