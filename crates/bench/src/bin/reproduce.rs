//! `reproduce` — regenerate every table and figure of the paper.
//!
//! ```text
//! reproduce [--scale S] [--jobs N] [--sim-threads K]
//!           [table3|table4|table5|table6|table7|
//!            table8|fig3|fig4|overall|minfree|diskcache|window|prefetch|
//!            ablations|dcd|scaling|scale|reuse|zipf|ionodes|faults|all]
//!           [--json out.json] [--scale-json out.json]
//! ```
//!
//! `--scale 1.0` (the default) uses the paper's Table 2 inputs; smaller
//! scales shrink both the applications and the machine proportionally
//! (useful for a quick pass).
//!
//! `--jobs N` fans independent runs out over N worker threads (`0` =
//! one per core, the default). Results are bit-identical at any job
//! count. `--sim-threads K` additionally parallelizes *inside* each
//! simulation (the PDES engine; `0` = one per core) — also
//! bit-identical at any K. `--json out.json` runs the full paper matrix and writes a
//! stable-schema `SweepReport` (`nwcache-sweep-v1`) — the format the
//! `BENCH_*.json` perf trajectories are recorded in. With `--json` and
//! no explicit targets, only the export runs.
//!
//! `scale` runs the generated-topology weak-/strong-scaling study
//! (8 → 64 → 256 nodes, standard vs NWCache); `--scale-json out.json`
//! additionally exports it as the frozen `nwcache-scale-v1` table.
//! The export carries no wall-clock or worker-count fields, so two
//! exports at different `--jobs` / `--sim-threads` settings are
//! byte-identical (the CI scale-smoke job `cmp`s them).
//!
//! `--trace-cell app:machine:prefetch` re-runs one cell of the paper
//! matrix with the observer attached and writes a Perfetto-loadable
//! Chrome trace (`--trace-out`, default `trace-cell.json`) — the way
//! to look *inside* any table entry, e.g. both equilibria of a
//! deviation: `--trace-cell sor:nwcache:naive`. The app position
//! accepts any workload spec, including `workload:<trace-file>` and
//! `workload:gen:<spec>` (the machine and prefetch labels are always
//! the last two `:`-separated tokens).

use nw_sim::atomic_write::write_atomic;
use nwcache::config::{MachineKind, PrefetchMode};
use nwcache::experiments as exp;
use nwcache::report;
use nwcache::AppSel;
use nw_apps::AppId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut json_path: Option<String> = None;
    let mut scale_json_path: Option<String> = None;
    let mut trace_cell: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--scale needs a number in (0, 1]");
            }
            "--json" => {
                json_path = Some(it.next().expect("--json needs a path"));
            }
            "--scale-json" => {
                scale_json_path = Some(it.next().expect("--scale-json needs a path"));
            }
            "--trace-cell" => {
                trace_cell =
                    Some(it.next().expect("--trace-cell needs app:machine:prefetch"));
            }
            "--trace-out" => {
                trace_out = Some(it.next().expect("--trace-out needs a path"));
            }
            "--jobs" => {
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--jobs needs a non-negative integer (0 = one per core)");
                nwcache::sweep::set_jobs(n);
            }
            "--sim-threads" => {
                let k: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--sim-threads needs a non-negative integer (0 = one per core)");
                nwcache::machine::set_default_sim_threads(k);
            }
            "--faults" => targets.push("faults".into()),
            other => targets.push(other.to_string()),
        }
    }
    // `--json`/`--scale-json`/`--trace-cell` with no explicit targets
    // run only the export / trace; otherwise no targets means
    // everything.
    if targets.is_empty()
        && json_path.is_none()
        && scale_json_path.is_none()
        && trace_cell.is_none()
    {
        targets.push("all".into());
    }
    if let Some(cell) = &trace_cell {
        // Split from the right so the app position can itself contain
        // ':' (workload:gen:<spec> and trace paths with colons).
        let mut parts = cell.rsplitn(3, ':');
        let (Some(prefetch), Some(machine), Some(app)) =
            (parts.next(), parts.next(), parts.next())
        else {
            panic!("--trace-cell wants app:machine:prefetch, got '{cell}'");
        };
        let sel = AppSel::parse(app)
            .unwrap_or_else(|e| panic!("--trace-cell: {e}"));
        let kind = match machine {
            "standard" | "std" => MachineKind::Standard,
            "nwcache" | "nwc" => MachineKind::NwCache,
            "dcd" => MachineKind::Dcd,
            other => panic!("--trace-cell: unknown machine '{other}'"),
        };
        let mode = match prefetch {
            "optimal" | "opt" => PrefetchMode::Optimal,
            "naive" => PrefetchMode::Naive,
            "window" | "win" => PrefetchMode::Window,
            "adaptive" => PrefetchMode::Adaptive,
            other => panic!("--trace-cell: unknown prefetch '{other}'"),
        };
        let cfg = nwcache::MachineConfig::scaled_paper(kind, mode, scale);
        let build = sel
            .build(&cfg)
            .unwrap_or_else(|e| panic!("--trace-cell: cannot build workload: {e}"));
        let mut m = nwcache::Machine::try_from_build(cfg, build)
            .unwrap_or_else(|e| panic!("--trace-cell: {e}"));
        m.enable_observer(nwcache::observe::ObserveConfig::default());
        let metrics = m.run();
        let data = m.take_observation().expect("observer was enabled");
        let path = trace_out.as_deref().unwrap_or("trace-cell.json");
        if let Err(e) = write_atomic(std::path::Path::new(path), data.to_chrome_json().as_bytes()) {
            eprintln!("reproduce: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!(
            "traced {cell}: exec {} pcycles, {} events retained ({} dropped) -> {path}",
            metrics.exec_time,
            data.events.len(),
            data.dropped
        );
    }
    let all = targets.iter().any(|t| t == "all");
    // The fault grid perturbs runs, so it never rides along with
    // `all` — ask for it explicitly (`faults` or `--faults`).
    let want_faults = targets.iter().any(|t| t == "faults");
    let want = |t: &str| t != "faults" && (all || targets.iter().any(|x| x == t));

    if want("table3") {
        let rows = exp::table_swap_out(PrefetchMode::Optimal, scale);
        println!(
            "{}",
            report::render_paired(
                "Table 3. Average swap-out times (Mpcycles) under OPTIMAL prefetching",
                "",
                &rows,
                1e6
            )
        );
    }
    if want("table4") {
        let rows = exp::table_swap_out(PrefetchMode::Naive, scale);
        println!(
            "{}",
            report::render_paired(
                "Table 4. Average swap-out times (Kpcycles) under NAIVE prefetching",
                "",
                &rows,
                1e3
            )
        );
    }
    if want("table5") {
        let rows = exp::table_combining(PrefetchMode::Optimal, scale);
        println!(
            "{}",
            report::render_paired(
                "Table 5. Average write combining under OPTIMAL prefetching",
                "",
                &rows,
                1.0
            )
        );
    }
    if want("table6") {
        let rows = exp::table_combining(PrefetchMode::Naive, scale);
        println!(
            "{}",
            report::render_paired(
                "Table 6. Average write combining under NAIVE prefetching",
                "",
                &rows,
                1.0
            )
        );
    }
    if want("table7") {
        let rows = exp::table_hit_rates(scale);
        println!("{}", report::render_hit_rates(&rows));
    }
    if want("table8") {
        let rows = exp::table_disk_hit_latency(scale);
        println!(
            "{}",
            report::render_paired(
                "Table 8. Average page-fault latency (Kpcycles) for disk cache hits, NAIVE prefetching",
                "",
                &rows,
                1e3
            )
        );
    }
    if want("fig3") {
        let bars = exp::figure_breakdown(PrefetchMode::Optimal, scale);
        println!(
            "{}",
            report::render_breakdown(
                "Figure 3. Normalized execution time breakdown, OPTIMAL prefetching (standard bar = 1.0)",
                &bars
            )
        );
        println!("{}", report::render_breakdown_bars("Figure 3 (bars)", &bars, 60));
    }
    if want("fig4") {
        let bars = exp::figure_breakdown(PrefetchMode::Naive, scale);
        println!(
            "{}",
            report::render_breakdown(
                "Figure 4. Normalized execution time breakdown, NAIVE prefetching (standard bar = 1.0)",
                &bars
            )
        );
        println!("{}", report::render_breakdown_bars("Figure 4 (bars)", &bars, 60));
    }
    if want("overall") {
        for (mode, label) in [
            (PrefetchMode::Optimal, "OPTIMAL"),
            (PrefetchMode::Naive, "NAIVE"),
        ] {
            println!("Overall NWCache improvement (%) under {label} prefetching");
            for (app, imp) in exp::overall_improvement(mode, scale) {
                println!("{app:<10} {imp:>7.1}%");
            }
            println!();
        }
    }
    if want("minfree") {
        for (kind, label) in [
            (MachineKind::Standard, "standard"),
            (MachineKind::NwCache, "nwcache"),
        ] {
            for (mode, mlabel) in [
                (PrefetchMode::Optimal, "optimal"),
                (PrefetchMode::Naive, "naive"),
            ] {
                let rows =
                    exp::minfree_sweep(AppId::Sor, kind, mode, &[2, 4, 8, 12, 16], scale);
                println!(
                    "{}",
                    report::render_sweep(
                        &format!("Min-free-frames sweep (sor, {label}, {mlabel})"),
                        "min_free",
                        &rows
                    )
                );
            }
        }
    }
    if want("window") {
        // Extension: the paper expects realistic prefetching to land
        // between the naive and optimal extremes.
        println!("Windowed (realistic) prefetching — NWCache improvement (%)");
        println!("{:<10} {:>8} {:>8} {:>8}", "app", "naive", "window", "optimal");
        let naive = exp::overall_improvement(PrefetchMode::Naive, scale);
        let window = exp::overall_improvement(PrefetchMode::Window, scale);
        let optimal = exp::overall_improvement(PrefetchMode::Optimal, scale);
        for ((n, w), o) in naive.iter().zip(&window).zip(&optimal) {
            println!("{:<10} {:>7.1}% {:>7.1}% {:>7.1}%", n.0, n.1, w.1, o.1);
        }
        println!();
    }
    if want("prefetch") {
        // Extension: the adaptive policy learns the access pattern
        // from the demand-miss stream alone; on the pure-sequential
        // cell it must land close to the optimal (oracle) extreme.
        println!("Prefetch-policy head-to-head (nwcache, pure-sequential scenario)");
        println!(
            "{:<10} {:>16} {:>10} {:>8} {:>9} {:>6} {:>7} {:>9}",
            "policy", "exec (pcycles)", "disk hits", "issued", "spec hit", "late", "wasted", "canceled"
        );
        let rows = exp::prefetch_policy_sweep(scale);
        for r in &rows {
            println!(
                "{:<10} {:>16} {:>9.1}% {:>8} {:>9} {:>6} {:>7} {:>9}",
                r.policy,
                r.exec_time,
                r.disk_hit_rate,
                r.spec_issued,
                r.spec_hits,
                r.spec_late,
                r.spec_wasted,
                r.spec_canceled
            );
        }
        if let (Some(opt), Some(naive), Some(ad)) = (
            rows.iter().find(|r| r.policy == "optimal"),
            rows.iter().find(|r| r.policy == "naive"),
            rows.iter().find(|r| r.policy == "adaptive"),
        ) {
            let gap = naive.exec_time.saturating_sub(opt.exec_time);
            if gap > 0 {
                let closed =
                    100.0 * naive.exec_time.saturating_sub(ad.exec_time) as f64 / gap as f64;
                println!("adaptive closes {closed:.1}% of the optimal-vs-naive gap");
            }
        }
        println!();
    }
    if want("ionodes") {
        println!("I/O-node sensitivity (sor, naive prefetching)");
        println!("{:<10} {:>14} {:>14}", "io nodes", "standard", "nwcache");
        for (n, s, w) in exp::ionode_sweep(AppId::Sor, PrefetchMode::Naive, &[1, 2, 4, 8], scale) {
            println!("{n:<10} {s:>14} {w:>14}");
        }
        println!();
    }
    if want("reuse") {
        // Extension: hit rate vs working-set overflow of memory+ring.
        println!("Victim-cache capacity probe (synthetic sweep workload)");
        println!(
            "{:<14} {:>18} {:>10}",
            "data (MB)", "data/(mem+ring)", "hit rate"
        );
        let mb = 1024 * 1024;
        for (bytes, ratio, hr) in exp::reuse_distance_sweep(
            &[mb, 2 * mb, 5 * mb / 2, 3 * mb, 4 * mb, 6 * mb],
            PrefetchMode::Naive,
        ) {
            println!(
                "{:<14.2} {:>18.2} {:>9.1}%",
                bytes as f64 / mb as f64,
                ratio,
                hr
            );
        }
        println!();
    }
    if want("zipf") {
        // Extension: victim-cache hit rate vs access skew of a
        // generated workload (see EXPERIMENTS.md for the recipe).
        println!("Zipf-skew sensitivity (generated workload, nwcache, naive prefetching)");
        println!("{:<8} {:>10} {:>16}", "skew", "hit rate", "exec (pcycles)");
        for (skew, hr, t) in
            exp::zipf_skew_sweep(&[0.0, 0.4, 0.8, 1.0, 1.2, 1.5], PrefetchMode::Naive)
        {
            println!("{skew:<8.1} {hr:>9.1}% {t:>16}");
        }
        println!();
    }
    if want("scaling") {
        println!("Machine-size scaling (sor, naive prefetching)");
        println!("{:<8} {:>14} {:>14} {:>12}", "nodes", "standard", "nwcache", "improvement");
        for (n, s, w) in exp::scaling_sweep(AppId::Sor, PrefetchMode::Naive, &[2, 4, 8, 16], scale) {
            let imp = 100.0 * (s as f64 - w as f64) / s as f64;
            println!("{n:<8} {s:>14} {w:>14} {imp:>11.1}%");
        }
        println!();
    }
    let want_scale = want("scale") || scale_json_path.is_some();
    if want_scale {
        // ROADMAP item 1: does the 8-node win survive 64 and 256
        // nodes? Weak scaling fixes per-processor work; strong
        // scaling splits one fixed problem across the machine.
        let rows = exp::scale_study(&exp::SCALE_TOPOS, scale).unwrap_or_else(|e| {
            eprintln!("reproduce: scale study: {e}");
            std::process::exit(2);
        });
        println!("Weak-/strong-scaling study (generated zipf workload, naive prefetching)");
        println!(
            "{:<44} {:>6} {:<7} {:>14} {:>14} {:>12}",
            "topology", "nodes", "mode", "standard", "nwcache", "improvement"
        );
        for pair in rows.chunks(2) {
            let [st, nw] = pair else { continue };
            let fmt = |r: &Result<nwcache::RunSummary, String>| match r {
                Ok(s) => s.exec_time.to_string(),
                Err(e) => format!("error: {e}"),
            };
            let imp = match (&st.result, &nw.result) {
                (Ok(s), Ok(w)) if s.exec_time > 0 => format!(
                    "{:.1}%",
                    100.0 * (s.exec_time as f64 - w.exec_time as f64) / s.exec_time as f64
                ),
                _ => "-".to_string(),
            };
            println!(
                "{:<44} {:>6} {:<7} {:>14} {:>14} {:>12}",
                st.topo,
                st.nodes,
                st.mode,
                fmt(&st.result),
                fmt(&nw.result),
                imp
            );
        }
        println!();
        if let Some(path) = &scale_json_path {
            let doc = exp::scale_report_json(scale, &rows);
            if let Err(e) = write_atomic(std::path::Path::new(path), doc.as_bytes()) {
                eprintln!("reproduce: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("wrote {} scale rows to {path}", rows.len());
        }
    }
    if want("dcd") {
        // Related-work baseline: the Disk Caching Disk stages writes
        // on a log disk; the NWCache stages them on the ring.
        println!("DCD baseline comparison (exec pcycles, naive prefetching)");
        println!(
            "{:<10} {:>14} {:>14} {:>14}",
            "app", "standard", "dcd", "nwcache"
        );
        for (app, std_t, dcd_t, nwc_t) in exp::dcd_comparison(PrefetchMode::Naive, scale) {
            println!("{app:<10} {std_t:>14} {dcd_t:>14} {nwc_t:>14}");
        }
        println!();
    }
    if want("ablations") {
        let rows = exp::ablation_flush_delay(
            AppId::Sor,
            MachineKind::NwCache,
            PrefetchMode::Optimal,
            &[0, 10_000, 50_000, 200_000, 1_000_000],
            scale,
        );
        println!("Ablation: flush accumulation window (sor, nwcache, optimal)");
        println!("{:<12} {:>10} {:>16}", "delay (pc)", "combining", "exec (pcycles)");
        for (d, comb, t) in rows {
            println!("{d:<12} {comb:>10.2} {t:>16}");
        }
        println!();
        let rows = exp::ablation_ring_geometry(
            AppId::Gauss,
            PrefetchMode::Naive,
            &[13, 26, 52, 104, 208],
            scale,
        );
        println!("Ablation: page-replacement policy (sor, standard, naive)");
        println!("{:<8} {:>16} {:>10}", "policy", "exec (pcycles)", "swaps");
        for (name, t, sw) in exp::replacement_comparison(
            AppId::Sor,
            MachineKind::Standard,
            PrefetchMode::Naive,
            scale,
        ) {
            println!("{name:<8} {t:>16} {sw:>10}");
        }
        println!();
        println!("Ablation: ring fiber length (gauss, nwcache, naive)");
        println!(
            "{:<14} {:>8} {:>10} {:>16}",
            "round-trip us", "slots", "hit rate", "exec (pcycles)"
        );
        for (us, slots, hr, t) in rows {
            println!("{us:<14} {slots:>8} {hr:>9.1}% {t:>16}");
        }
        println!();
    }
    if want_faults {
        let rows = exp::fault_tolerance(
            AppId::Sor,
            scale,
            &[0.0, 1e-5, 1e-4, 1e-3],
            &[0, 1, 2],
        );
        println!(
            "{}",
            report::render_fault_table(
                "Fault injection: execution time vs disk error rate and dead ring channels (sor, naive prefetching)",
                &rows
            )
        );
    }
    if let Some(path) = &json_path {
        // Run the full paper matrix through the parallel sweep engine
        // and export it as a stable-schema SweepReport.
        let report = nwcache::SweepReport::paper(scale, nwcache::sweep::jobs());
        if let Err(e) = write_atomic(std::path::Path::new(path), report.to_json().as_bytes()) {
            eprintln!("reproduce: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!(
            "wrote {} runs ({} errors) to {path} — jobs={} wall={}ms",
            report.rows.len(),
            report.errors(),
            report.jobs,
            report.wall_ms
        );
    }
    if want("diskcache") {
        let (rows, nwc) =
            exp::diskcache_sweep(AppId::Sor, PrefetchMode::Optimal, &[4, 8, 16, 32, 64, 128], scale);
        println!(
            "{}",
            report::render_sweep(
                "Disk-controller-cache sweep (sor, standard machine, optimal prefetching)",
                "cache pages",
                &rows
            )
        );
        println!("nwcache reference (4-page cache): {nwc} pcycles\n");
    }
}
