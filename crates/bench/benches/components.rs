//! Microbenchmarks of the simulator's substrate components: event
//! queue throughput and RNG speed. These are the hot paths of the
//! machine model. Hand-rolled timing loop (no external bench harness)
//! so the workspace builds offline.

use std::time::Instant;

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed() / iters;
    println!("{name:<32} {:>12.1} us/iter", per_iter.as_secs_f64() * 1e6);
}

fn main() {
    bench("event_queue_push_pop_10k", 20, || {
        let mut q = nw_sim::EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule_at(i * 7 % 5000, i);
        }
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        std::hint::black_box(n);
    });
    let mut rng = nw_sim::Pcg32::new(1, 2);
    bench("pcg32_100k", 50, || {
        let mut acc = 0u32;
        for _ in 0..100_000 {
            acc = acc.wrapping_add(rng.next_u32());
        }
        std::hint::black_box(acc);
    });
}
