//! Microbenchmarks of the simulator's substrate components: event
//! queue throughput, cache/TLB/directory operations, mesh routing and
//! ring snoops. These are the hot paths of the machine model.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = nw_sim::EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule_at(i * 7 % 5000, i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            std::hint::black_box(n)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("pcg32_100k", |b| {
        let mut rng = nw_sim::Pcg32::new(1, 2);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(rng.next_u32());
            }
            std::hint::black_box(acc)
        })
    });
}

criterion_group!(components, bench_event_queue, bench_rng);
criterion_main!(components);
