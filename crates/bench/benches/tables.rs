//! Criterion benches: one benchmark per paper table/figure. Each
//! bench runs the exact experiment that regenerates the artifact (at a
//! reduced scale so `cargo bench` stays tractable) and reports the
//! simulation wall time. The `reproduce` binary prints the artifacts
//! themselves; these benches track the cost of regenerating them and
//! guard against performance regressions of the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use nw_apps::AppId;
use nwcache::config::{MachineKind, PrefetchMode};
use nwcache::experiments as exp;
use nwcache::{run_app, MachineConfig};

/// Scale used by the benches: small enough to iterate, large enough
/// to stay out-of-core.
const BENCH_SCALE: f64 = 0.05;

fn bench_single_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_run");
    g.sample_size(10);
    for (kind, kname) in [
        (MachineKind::Standard, "std"),
        (MachineKind::NwCache, "nwc"),
    ] {
        for (pf, pname) in [
            (PrefetchMode::Optimal, "opt"),
            (PrefetchMode::Naive, "naive"),
        ] {
            g.bench_function(format!("sor_{kname}_{pname}"), |b| {
                b.iter(|| {
                    let cfg = MachineConfig::scaled_paper(kind, pf, BENCH_SCALE);
                    std::hint::black_box(run_app(&cfg, AppId::Sor))
                })
            });
        }
    }
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_swapout_optimal", |b| {
        b.iter(|| std::hint::black_box(exp::table_swap_out(PrefetchMode::Optimal, BENCH_SCALE)))
    });
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("table4_swapout_naive", |b| {
        b.iter(|| std::hint::black_box(exp::table_swap_out(PrefetchMode::Naive, BENCH_SCALE)))
    });
}

fn bench_table5(c: &mut Criterion) {
    c.bench_function("table5_combining_optimal", |b| {
        b.iter(|| std::hint::black_box(exp::table_combining(PrefetchMode::Optimal, BENCH_SCALE)))
    });
}

fn bench_table6(c: &mut Criterion) {
    c.bench_function("table6_combining_naive", |b| {
        b.iter(|| std::hint::black_box(exp::table_combining(PrefetchMode::Naive, BENCH_SCALE)))
    });
}

fn bench_table7(c: &mut Criterion) {
    c.bench_function("table7_hitrates", |b| {
        b.iter(|| std::hint::black_box(exp::table_hit_rates(BENCH_SCALE)))
    });
}

fn bench_table8(c: &mut Criterion) {
    c.bench_function("table8_disk_hit_latency", |b| {
        b.iter(|| std::hint::black_box(exp::table_disk_hit_latency(BENCH_SCALE)))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_breakdown_optimal", |b| {
        b.iter(|| std::hint::black_box(exp::figure_breakdown(PrefetchMode::Optimal, BENCH_SCALE)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_breakdown_naive", |b| {
        b.iter(|| std::hint::black_box(exp::figure_breakdown(PrefetchMode::Naive, BENCH_SCALE)))
    });
}

fn bench_sweeps(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweeps");
    g.sample_size(10);
    g.bench_function("minfree_sweep", |b| {
        b.iter(|| {
            std::hint::black_box(exp::minfree_sweep(
                AppId::Sor,
                MachineKind::NwCache,
                PrefetchMode::Naive,
                &[2, 4, 8],
                BENCH_SCALE,
            ))
        })
    });
    g.bench_function("diskcache_sweep", |b| {
        b.iter(|| {
            std::hint::black_box(exp::diskcache_sweep(
                AppId::Sor,
                PrefetchMode::Optimal,
                &[4, 16, 64],
                BENCH_SCALE,
            ))
        })
    });
    g.finish();
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_single_runs, bench_table3, bench_table4, bench_table5,
              bench_table6, bench_table7, bench_table8, bench_fig3,
              bench_fig4, bench_sweeps
}
criterion_main!(tables);
