//! Benchmarks: one per paper table/figure. Each runs the exact
//! experiment that regenerates the artifact (at a reduced scale so
//! `cargo bench` stays tractable) and reports the simulation wall
//! time. The `reproduce` binary prints the artifacts themselves;
//! these benches track the cost of regenerating them and guard
//! against performance regressions of the simulator. Hand-rolled
//! timing loop (no external bench harness) so the workspace builds
//! offline.

use nw_apps::AppId;
use nwcache::config::{MachineKind, PrefetchMode};
use nwcache::experiments as exp;
use nwcache::{run_app, MachineConfig};
use std::time::Instant;

/// Scale used by the benches: small enough to iterate, large enough
/// to stay out-of-core.
const BENCH_SCALE: f64 = 0.05;

/// Iterations per benchmark (the simulator is deterministic, so a few
/// repeats suffice to smooth scheduler noise).
const ITERS: u32 = 3;

fn bench(name: &str, mut f: impl FnMut()) {
    // One warm-up pass, then time the repeats.
    f();
    let start = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let per_iter = start.elapsed() / ITERS;
    println!("{name:<40} {:>12.3} ms/iter", per_iter.as_secs_f64() * 1e3);
}

fn main() {
    println!("tables bench (scale {BENCH_SCALE}, {ITERS} iters each)");
    for (kind, kname) in [
        (MachineKind::Standard, "std"),
        (MachineKind::NwCache, "nwc"),
    ] {
        for (pf, pname) in [
            (PrefetchMode::Optimal, "opt"),
            (PrefetchMode::Naive, "naive"),
        ] {
            bench(&format!("single_run/sor_{kname}_{pname}"), || {
                let cfg = MachineConfig::scaled_paper(kind, pf, BENCH_SCALE);
                std::hint::black_box(run_app(&cfg, AppId::Sor));
            });
        }
    }
    bench("table3_swapout_optimal", || {
        std::hint::black_box(exp::table_swap_out(PrefetchMode::Optimal, BENCH_SCALE));
    });
    bench("table4_swapout_naive", || {
        std::hint::black_box(exp::table_swap_out(PrefetchMode::Naive, BENCH_SCALE));
    });
    bench("table5_combining_optimal", || {
        std::hint::black_box(exp::table_combining(PrefetchMode::Optimal, BENCH_SCALE));
    });
    bench("table6_combining_naive", || {
        std::hint::black_box(exp::table_combining(PrefetchMode::Naive, BENCH_SCALE));
    });
    bench("table7_hitrates", || {
        std::hint::black_box(exp::table_hit_rates(BENCH_SCALE));
    });
    bench("table8_disk_hit_latency", || {
        std::hint::black_box(exp::table_disk_hit_latency(BENCH_SCALE));
    });
    bench("fig3_breakdown_optimal", || {
        std::hint::black_box(exp::figure_breakdown(PrefetchMode::Optimal, BENCH_SCALE));
    });
    bench("fig4_breakdown_naive", || {
        std::hint::black_box(exp::figure_breakdown(PrefetchMode::Naive, BENCH_SCALE));
    });
    bench("sweeps/minfree_sweep", || {
        std::hint::black_box(exp::minfree_sweep(
            AppId::Sor,
            MachineKind::NwCache,
            PrefetchMode::Naive,
            &[2, 4, 8],
            BENCH_SCALE,
        ));
    });
    bench("sweeps/diskcache_sweep", || {
        std::hint::black_box(exp::diskcache_sweep(
            AppId::Sor,
            PrefetchMode::Optimal,
            &[4, 16, 64],
            BENCH_SCALE,
        ));
    });
}
