//! CLI-level tests for `nwsim`: the workload subcommands and the
//! unknown-app error path, exercised through the real binary.

use std::path::PathBuf;
use std::process::Command;

fn nwsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nwsim"))
}

/// A per-test scratch file path under the target-specific temp dir.
fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nwsim-cli-{}-{name}", std::process::id()));
    p
}

#[test]
fn unknown_app_lists_registry_and_workload_syntax() {
    let out = nwsim()
        .args(["run", "--app", "guass", "--scale", "0.05"])
        .output()
        .expect("spawn nwsim");
    assert_eq!(out.status.code(), Some(2), "unknown app must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown app 'guass'"), "{stderr}");
    for name in ["em3d", "fft", "gauss", "lu", "mg", "radix", "sor"] {
        assert!(stderr.contains(name), "missing '{name}' in: {stderr}");
    }
    assert!(stderr.contains("workload:<trace-file>"), "{stderr}");
    assert!(stderr.contains("workload:gen:<spec>"), "{stderr}");
}

#[test]
fn bad_scenario_spec_fails_with_reason() {
    let out = nwsim()
        .args(["run", "--app", "workload:gen:lru,ws=4"])
        .output()
        .expect("spawn nwsim");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown pattern 'lru'"), "{stderr}");
}

#[test]
fn gen_describe_replay_round_trip() {
    let spec = "zipf:0.9,ws=24,acc=300,wf=0.4,cpa=10";
    let path = scratch("gen.nwtrace");
    let path_s = path.to_str().unwrap();

    // gen: materialize the scenario to a trace file.
    let out = nwsim()
        .args(["workload", "gen", "--spec", spec, "--out", path_s])
        .output()
        .expect("spawn nwsim");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // describe: decodes, validates, and reports the stream shape.
    let out = nwsim()
        .args(["workload", "describe", path_s])
        .output()
        .expect("spawn nwsim");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("valid nwtrace-v1"), "{stdout}");
    assert!(stdout.contains(spec), "{stdout}");
    assert!(stdout.contains("procs:      8"), "{stdout}");

    // replay the file vs generating on the fly in `run`: the default
    // gen seed matches the machine's default workload seed, so the
    // two JSON summaries must be byte-identical.
    let replayed = nwsim()
        .args(["workload", "replay", "--trace", path_s, "--scale", "0.05", "--json"])
        .output()
        .expect("spawn nwsim");
    assert!(replayed.status.success(), "{}", String::from_utf8_lossy(&replayed.stderr));
    let direct = nwsim()
        .args(["run", "--app", &format!("workload:gen:{spec}"), "--scale", "0.05", "--json"])
        .output()
        .expect("spawn nwsim");
    assert!(direct.status.success(), "{}", String::from_utf8_lossy(&direct.stderr));
    assert_eq!(
        String::from_utf8_lossy(&replayed.stdout),
        String::from_utf8_lossy(&direct.stdout),
        "file replay diverged from on-the-fly generation"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn record_then_replay_matches_direct_run() {
    let path = scratch("gauss.nwtrace");
    let path_s = path.to_str().unwrap();
    let out = nwsim()
        .args(["workload", "record", "--app", "gauss", "--scale", "0.05", "--out", path_s, "--binary"])
        .output()
        .expect("spawn nwsim");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let replayed = nwsim()
        .args(["workload", "replay", "--trace", path_s, "--scale", "0.05", "--json"])
        .output()
        .expect("spawn nwsim");
    assert!(replayed.status.success(), "{}", String::from_utf8_lossy(&replayed.stderr));
    let direct = nwsim()
        .args(["run", "--app", "gauss", "--scale", "0.05", "--json"])
        .output()
        .expect("spawn nwsim");
    assert!(direct.status.success(), "{}", String::from_utf8_lossy(&direct.stderr));
    assert_eq!(
        String::from_utf8_lossy(&replayed.stdout),
        String::from_utf8_lossy(&direct.stdout),
        "recorded gauss replay diverged from the direct run"
    );
    std::fs::remove_file(&path).ok();
}
