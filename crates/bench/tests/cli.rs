//! CLI-level tests for `nwsim`: the workload subcommands and the
//! unknown-app error path, exercised through the real binary.

use std::path::PathBuf;
use std::process::Command;

fn nwsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nwsim"))
}

/// A per-test scratch file path under the target-specific temp dir.
fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nwsim-cli-{}-{name}", std::process::id()));
    p
}

#[test]
fn unknown_app_lists_registry_and_workload_syntax() {
    let out = nwsim()
        .args(["run", "--app", "guass", "--scale", "0.05"])
        .output()
        .expect("spawn nwsim");
    assert_eq!(out.status.code(), Some(2), "unknown app must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown app 'guass'"), "{stderr}");
    for name in ["em3d", "fft", "gauss", "lu", "mg", "radix", "sor"] {
        assert!(stderr.contains(name), "missing '{name}' in: {stderr}");
    }
    assert!(stderr.contains("workload:<trace-file>"), "{stderr}");
    assert!(stderr.contains("workload:gen:<spec>"), "{stderr}");
}

#[test]
fn bad_scenario_spec_fails_with_reason() {
    let out = nwsim()
        .args(["run", "--app", "workload:gen:lru,ws=4"])
        .output()
        .expect("spawn nwsim");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown pattern 'lru'"), "{stderr}");
}

#[test]
fn gen_describe_replay_round_trip() {
    let spec = "zipf:0.9,ws=24,acc=300,wf=0.4,cpa=10";
    let path = scratch("gen.nwtrace");
    let path_s = path.to_str().unwrap();

    // gen: materialize the scenario to a trace file.
    let out = nwsim()
        .args(["workload", "gen", "--spec", spec, "--out", path_s])
        .output()
        .expect("spawn nwsim");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // describe: decodes, validates, and reports the stream shape.
    let out = nwsim()
        .args(["workload", "describe", path_s])
        .output()
        .expect("spawn nwsim");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("valid nwtrace-v1"), "{stdout}");
    assert!(stdout.contains(spec), "{stdout}");
    assert!(stdout.contains("procs:      8"), "{stdout}");

    // replay the file vs generating on the fly in `run`: the default
    // gen seed matches the machine's default workload seed, so the
    // two JSON summaries must be byte-identical.
    let replayed = nwsim()
        .args(["workload", "replay", "--trace", path_s, "--scale", "0.05", "--json"])
        .output()
        .expect("spawn nwsim");
    assert!(replayed.status.success(), "{}", String::from_utf8_lossy(&replayed.stderr));
    let direct = nwsim()
        .args(["run", "--app", &format!("workload:gen:{spec}"), "--scale", "0.05", "--json"])
        .output()
        .expect("spawn nwsim");
    assert!(direct.status.success(), "{}", String::from_utf8_lossy(&direct.stderr));
    assert_eq!(
        String::from_utf8_lossy(&replayed.stdout),
        String::from_utf8_lossy(&direct.stdout),
        "file replay diverged from on-the-fly generation"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn record_then_replay_matches_direct_run() {
    let path = scratch("gauss.nwtrace");
    let path_s = path.to_str().unwrap();
    let out = nwsim()
        .args(["workload", "record", "--app", "gauss", "--scale", "0.05", "--out", path_s, "--binary"])
        .output()
        .expect("spawn nwsim");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let replayed = nwsim()
        .args(["workload", "replay", "--trace", path_s, "--scale", "0.05", "--json"])
        .output()
        .expect("spawn nwsim");
    assert!(replayed.status.success(), "{}", String::from_utf8_lossy(&replayed.stderr));
    let direct = nwsim()
        .args(["run", "--app", "gauss", "--scale", "0.05", "--json"])
        .output()
        .expect("spawn nwsim");
    assert!(direct.status.success(), "{}", String::from_utf8_lossy(&direct.stderr));
    assert_eq!(
        String::from_utf8_lossy(&replayed.stdout),
        String::from_utf8_lossy(&direct.stdout),
        "recorded gauss replay diverged from the direct run"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn check_regress_refuses_quick_baseline() {
    // A baseline recorded with --quick says "authoritative": false;
    // gating against its noise must fail fast (before any kernel
    // timing starts), with a message naming the cure.
    let path = scratch("quick-baseline.json");
    std::fs::write(
        &path,
        "{\n  \"schema\": \"nwcache-bench-v1\",\n  \"quick\": true,\n  \
         \"authoritative\": false,\n  \"kernels\": [\n  ]\n}",
    )
    .expect("write baseline");
    let out = nwsim()
        .args([
            "bench",
            "--quick",
            "--baseline",
            path.to_str().unwrap(),
            "--check-regress",
            "10",
        ])
        .output()
        .expect("spawn nwsim");
    assert_eq!(out.status.code(), Some(2), "quick baseline must be refused");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("authoritative"), "{stderr}");
    assert!(stderr.contains("re-record"), "{stderr}");
    // Refusal happened before the kernels ran.
    assert!(!stderr.contains("timing hot-path kernels"), "{stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn topo_flag_builds_generated_machines() {
    let out = nwsim()
        .args(["config", "--topo", "mesh=4x4,io=corners,rings=2,dirshards=4"])
        .output()
        .expect("spawn nwsim");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for want in ["nodes: 16", "mesh_width: 4", "ring_count: 2", "dir_shards: 4"] {
        assert!(stdout.contains(want), "missing '{want}' in: {stdout}");
    }

    let bad = nwsim()
        .args(["config", "--topo", "mesh=0x4"])
        .output()
        .expect("spawn nwsim");
    assert_eq!(bad.status.code(), Some(2), "mesh=0x4 must be rejected");
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stderr.contains("bad --topo"), "{stderr}");
}

/// One test per documented exit code (DESIGN.md §18): scripts and the
/// server's `JobError` mapping both rely on these exact values, so
/// they are frozen here against the real binary.
#[test]
fn exit_codes_are_the_documented_enum() {
    let app = "workload:gen:zipf:0.9,ws=16,acc=400";

    // 0 — success.
    let ok = nwsim()
        .args(["run", "--app", app, "--json"])
        .output()
        .expect("spawn nwsim");
    assert_eq!(ok.status.code(), Some(0), "{}", String::from_utf8_lossy(&ok.stderr));

    // 2 — validation error (unknown app name).
    let bad = nwsim().args(["run", "--app", "guass"]).output().expect("spawn nwsim");
    assert_eq!(bad.status.code(), Some(2));

    // 3 — simulation fault (autosave into a nonexistent directory is
    // an I/O fault at run time, past validation).
    let missing_dir = scratch("no-such-dir").join("x.nwckpt");
    let fault = nwsim()
        .args([
            "run", "--app", app,
            "--checkpoint", missing_dir.to_str().unwrap(),
            "--checkpoint-every", "500",
        ])
        .output()
        .expect("spawn nwsim");
    assert_eq!(
        fault.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&fault.stderr)
    );

    // Save two checkpoints stopped at different points for codes 1/4.
    let a = scratch("exit-a.nwckpt");
    let b = scratch("exit-b.nwckpt");
    for (path, stop) in [(&a, "700"), (&b, "1300")] {
        let out = nwsim()
            .args([
                "run", "--app", app,
                "--checkpoint", path.to_str().unwrap(),
                "--checkpoint-every", "300",
                "--stop-after", stop,
            ])
            .output()
            .expect("spawn nwsim");
        assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    }

    // 1 — gate failure: ckpt-diff over genuinely different states.
    let diff = nwsim()
        .args(["ckpt-diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("spawn nwsim");
    assert_eq!(diff.status.code(), Some(1), "{}", String::from_utf8_lossy(&diff.stdout));

    // 4 — corrupt checkpoint: flip one payload byte and resume.
    let mut bytes = std::fs::read(&a).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&a, &bytes).expect("rewrite checkpoint");
    let corrupt = nwsim()
        .args(["resume", a.to_str().unwrap()])
        .output()
        .expect("spawn nwsim");
    assert_eq!(
        corrupt.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&corrupt.stderr)
    );

    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}
