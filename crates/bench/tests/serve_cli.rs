//! `nwsim serve` / `nwsim client` through the real binary: byte
//! identity against the batch CLI, the metrics verbs, and a SIGTERM
//! drain that autosaves a resumable checkpoint.

use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn nwsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nwsim"))
}

fn scratch_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nwsim-serve-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Spawn `nwsim serve` on a free port and return the child plus the
/// bound address parsed from its stderr banner.
fn spawn_server(extra: &[&str]) -> (Child, BufReader<std::process::ChildStderr>, String) {
    let mut child = nwsim()
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn nwsim serve");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).expect("read serve banner");
    let addr = line
        .trim()
        .strip_prefix("nwsim serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .to_string();
    (child, stderr, addr)
}

const APP: &str = "workload:gen:zipf:0.9,ws=64,acc=2000";

#[test]
fn client_run_output_is_byte_identical_to_batch_run() {
    let (mut server, mut stderr, addr) = spawn_server(&[]);

    let remote = nwsim()
        .args(["client", "run", "--addr", &addr, "--app", APP])
        .output()
        .expect("spawn client");
    assert_eq!(
        remote.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&remote.stderr)
    );
    let local = nwsim()
        .args(["run", "--app", APP, "--json"])
        .output()
        .expect("spawn batch run");
    assert_eq!(local.status.code(), Some(0));
    assert_eq!(
        remote.stdout, local.stdout,
        "client stdout diverged from `nwsim run --json`"
    );

    // Metrics over the protocol report the finished job.
    let metrics = nwsim()
        .args(["client", "metrics", "--addr", &addr])
        .output()
        .expect("spawn client metrics");
    let page = String::from_utf8_lossy(&metrics.stdout);
    assert!(page.contains("nwserve_jobs_completed_total 1"), "{page}");

    // Clean shutdown via the protocol verb.
    let down = nwsim()
        .args(["client", "shutdown", "--addr", &addr])
        .output()
        .expect("spawn client shutdown");
    assert_eq!(down.status.code(), Some(0));
    let status = server.wait().expect("server exit");
    assert!(status.success(), "serve must exit 0 after drain");
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("drained"), "{rest}");
}

#[cfg(unix)]
#[test]
fn sigterm_drains_a_running_job_to_a_valid_checkpoint() {
    let autosave = scratch_dir("autosave");
    let (mut server, mut server_err, addr) =
        spawn_server(&["--autosave-dir", autosave.to_str().unwrap()]);

    // A job long enough to be mid-flight when the signal lands;
    // progress frames tell us when it is actually running.
    let long_app = "workload:gen:zipf:0.9,ws=256,acc=60000";
    let mut client = nwsim()
        .args([
            "client", "run", "--addr", &addr,
            "--app", long_app,
            "--progress-every", "500",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn client");
    let mut client_err = BufReader::new(client.stderr.take().unwrap());
    let mut line = String::new();
    client_err.read_line(&mut line).expect("first progress line");
    assert!(line.contains("cell 1/1"), "unexpected client line: {line:?}");

    // The job is running: deliver SIGTERM to the server.
    let kill = Command::new("kill")
        .args(["-TERM", &server.id().to_string()])
        .status()
        .expect("run kill");
    assert!(kill.success());

    // The client is told about the drain and exits cleanly with no
    // JSON on stdout.
    let out = client.wait_with_output().expect("client exit");
    assert_eq!(out.status.code(), Some(0));
    assert!(out.stdout.is_empty(), "drained job must print no summary");
    let mut rest = String::new();
    client_err.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("drained by server shutdown"), "{rest}");
    assert!(rest.contains("nwsim resume"), "{rest}");

    // The server reports the drain and exits 0.
    let status = server.wait().expect("server exit");
    assert!(status.success());
    let mut srest = String::new();
    server_err.read_to_string(&mut srest).unwrap();
    assert!(srest.contains("1 autosaved"), "{srest}");

    // The autosaved checkpoint is a structurally valid nwckpt-v1
    // file naming the interrupted workload.
    let saved: Vec<_> = std::fs::read_dir(&autosave)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "nwckpt"))
        .collect();
    assert_eq!(saved.len(), 1, "expected exactly one autosave, got {saved:?}");
    let check = nwsim()
        .args(["ckpt-validate", saved[0].to_str().unwrap()])
        .output()
        .expect("spawn ckpt-validate");
    assert_eq!(
        check.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
    let report = String::from_utf8_lossy(&check.stdout);
    assert!(report.contains("valid nwckpt-v1"), "{report}");
    assert!(report.contains(long_app), "{report}");
    let _ = std::fs::remove_dir_all(&autosave);
}
