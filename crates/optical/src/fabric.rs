//! Multi-ring optical fabric: several independent delay-line rings
//! behind one channel namespace.
//!
//! The paper's machine has a single ring with one cache channel per
//! node. Scaling past it, the fabric stacks `rings` identical rings;
//! every node owns one channel *on each ring*, and pages are sharded
//! across rings by the caller (the VM layer picks the ring from the
//! page number, so a page's slot is always findable without a search).
//!
//! **Channel namespace.** Everything machine-facing is indexed by a
//! *global channel id* `gc = ring * channels_per_ring + node`. With a
//! single ring `gc == node`, so the fabric is a drop-in replacement
//! for [`OpticalRing`] — same method names, same behaviour, and (by
//! the checkpoint format below) the same serialized bytes.
//!
//! **Arbitration.** Each node still has a single tunable transmitter:
//! it can insert on any ring, but on only one at a time. With
//! `rings > 1`, inserts first serialize on the node's transmitter
//! arbiter and then occupy the target ring's channel transmitter for
//! the transfer duration; the per-(ring, node) channel `tx` inside
//! each ring never conflicts beyond that because every insert reaches
//! it through the arbiter. With one ring the arbiter layer is skipped
//! entirely (the channel `tx` *is* the node transmitter), keeping the
//! paper machine bit-identical.
//!
//! **Checkpoint format.** Rings are saved back to back in ring order;
//! the per-node arbiters follow only when `rings > 1`. A single-ring
//! fabric therefore serializes to exactly the bytes [`OpticalRing::
//! ckpt_save`] always produced, which is what keeps pre-fabric
//! checkpoints restorable.

use crate::ring::{RingConfig, RingError};
use crate::{OpticalRing, Page};
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use nw_sim::{Resource, Time};

/// A stack of identical optical rings addressed by global channel id.
#[derive(Debug)]
pub struct RingFabric {
    rings: Vec<OpticalRing>,
    /// Per-node transmitter arbiters; empty when `rings == 1` (the
    /// single ring's channel transmitters already serialize per node).
    arbiters: Vec<Resource>,
    channels_per_ring: usize,
}

impl RingFabric {
    /// A fabric of `rings` empty rings, each with `cfg`'s geometry.
    pub fn new(cfg: RingConfig, rings: usize) -> Self {
        assert!(rings > 0, "fabric needs at least one ring");
        RingFabric {
            rings: (0..rings).map(|_| OpticalRing::new(cfg)).collect(),
            arbiters: if rings > 1 {
                (0..cfg.channels).map(|_| Resource::new("ring-arb")).collect()
            } else {
                Vec::new()
            },
            channels_per_ring: cfg.channels,
        }
    }

    /// Number of rings in the fabric.
    pub fn ring_count(&self) -> usize {
        self.rings.len()
    }

    /// Channels per ring (= nodes).
    pub fn channels_per_ring(&self) -> usize {
        self.channels_per_ring
    }

    /// Total channels across the fabric (global channel ids are
    /// `0..channels()`).
    pub fn channels(&self) -> usize {
        self.rings.len() * self.channels_per_ring
    }

    /// The ring configuration (identical across rings).
    pub fn config(&self) -> &RingConfig {
        self.rings[0].config()
    }

    #[inline]
    fn split(&self, gc: usize) -> (usize, usize) {
        debug_assert!(gc < self.channels(), "global channel {gc} out of range");
        (gc / self.channels_per_ring, gc % self.channels_per_ring)
    }

    /// Whether global channel `gc` can accept another page.
    pub fn has_room(&self, gc: usize) -> bool {
        let (r, ch) = self.split(gc);
        self.rings[r].has_room(ch)
    }

    /// Whether global channel `gc` has failed.
    pub fn is_dead(&self, gc: usize) -> bool {
        let (r, ch) = self.split(gc);
        self.rings[r].is_dead(ch)
    }

    /// Channels still operational across all rings.
    pub fn live_channels(&self) -> usize {
        self.rings.iter().map(|r| r.live_channels()).sum()
    }

    /// Fail global channel `gc`, destroying its circulating pages (in
    /// ascending page order, see [`OpticalRing::fail_channel`]). The
    /// same node's channels on other rings keep working.
    pub fn fail_channel(&mut self, gc: usize) -> Vec<Page> {
        let (r, ch) = self.split(gc);
        self.rings[r].fail_channel(ch)
    }

    /// Pages currently stored on global channel `gc`.
    pub fn occupancy(&self, gc: usize) -> usize {
        let (r, ch) = self.split(gc);
        self.rings[r].occupancy(ch)
    }

    /// Total pages stored across the whole fabric.
    pub fn total_occupancy(&self) -> usize {
        self.rings.iter().map(|r| r.total_occupancy()).sum()
    }

    /// Insert `page` on global channel `gc` at `now`; returns the time
    /// the page is fully on the ring. With several rings the insert
    /// first serializes on the node's transmitter arbiter (one tunable
    /// transmitter per node), then on the target channel.
    pub fn insert(&mut self, now: Time, gc: usize, page: Page) -> Result<Time, RingError> {
        let (r, ch) = self.split(gc);
        if self.arbiters.is_empty() {
            return self.rings[r].insert(now, ch, page);
        }
        // Reject before touching the arbiter so a full/dead/duplicate
        // channel does not consume transmitter time.
        if self.rings[r].is_dead(ch) {
            return Err(RingError::ChannelDead);
        }
        if !self.rings[r].has_room(ch) {
            return Err(RingError::ChannelFull);
        }
        if self.rings[r].contains(ch, page) {
            return Err(RingError::Duplicate);
        }
        let cfg = self.rings[r].config();
        let dur = cfg.rate.transfer_cycles(cfg.page_bytes);
        let grant = self.arbiters[ch].acquire(now, dur);
        // The channel transmitter is necessarily free at grant.start:
        // every insert on (r, ch) funnels through the same arbiter.
        self.rings[r].insert(grant.start, ch, page)
    }

    /// Whether `page` is stored on global channel `gc`.
    pub fn contains(&self, gc: usize, page: Page) -> bool {
        let (r, ch) = self.split(gc);
        self.rings[r].contains(ch, page)
    }

    /// Locate the global channel storing `page`, if any (linear scan;
    /// consistency checks only).
    pub fn find(&self, page: Page) -> Option<usize> {
        self.rings
            .iter()
            .enumerate()
            .find_map(|(r, ring)| ring.find(page).map(|ch| r * self.channels_per_ring + ch))
    }

    /// Snoop completion time of `page` on global channel `gc` (see
    /// [`OpticalRing::snoop_ready`]).
    pub fn snoop_ready(&mut self, now: Time, gc: usize, page: Page) -> Option<Time> {
        let (r, ch) = self.split(gc);
        self.rings[r].snoop_ready(now, ch, page)
    }

    /// Remove `page` from global channel `gc`, freeing its slot.
    pub fn remove(&mut self, gc: usize, page: Page) -> bool {
        let (r, ch) = self.split(gc);
        self.rings[r].remove(ch, page)
    }

    /// Insertions performed on global channel `gc`.
    pub fn inserts(&self, gc: usize) -> u64 {
        let (r, ch) = self.split(gc);
        self.rings[r].inserts(ch)
    }

    /// Removals performed on global channel `gc`.
    pub fn removals(&self, gc: usize) -> u64 {
        let (r, ch) = self.split(gc);
        self.rings[r].removals(ch)
    }

    /// Snoops performed on global channel `gc`.
    pub fn snoops(&self, gc: usize) -> u64 {
        let (r, ch) = self.split(gc);
        self.rings[r].snoops(ch)
    }

    /// Peak simultaneous occupancy of global channel `gc`.
    pub fn peak_occupancy(&self, gc: usize) -> usize {
        let (r, ch) = self.split(gc);
        self.rings[r].peak_occupancy(ch)
    }

    /// Serialize the fabric: each ring back to back, then (only with
    /// several rings) the per-node arbiters. A single-ring fabric's
    /// bytes are exactly [`OpticalRing::ckpt_save`]'s.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        for ring in &self.rings {
            ring.ckpt_save(w);
        }
        for arb in &self.arbiters {
            arb.ckpt_save(w);
        }
    }

    /// Overlay state saved by [`RingFabric::ckpt_save`] onto a fabric
    /// with the same geometry.
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        for ring in &mut self.rings {
            ring.ckpt_restore(r)?;
        }
        for arb in &mut self.arbiters {
            arb.ckpt_restore(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(rings: usize) -> RingFabric {
        RingFabric::new(RingConfig::paper_default(), rings)
    }

    #[test]
    fn single_ring_fabric_matches_the_plain_ring() {
        let mut f = fabric(1);
        let mut r = OpticalRing::new(RingConfig::paper_default());
        assert_eq!(f.channels(), 8);
        assert_eq!(f.insert(100, 3, 42).unwrap(), r.insert(100, 3, 42).unwrap());
        assert_eq!(f.snoop_ready(200, 3, 42), r.snoop_ready(200, 3, 42));
        assert!(f.contains(3, 42) && !f.contains(2, 42));
        assert_eq!(f.find(42), Some(3));
        // Identical checkpoint bytes.
        let mut wf = CkptWriter::new();
        let mut wr = CkptWriter::new();
        wf.begin_section(1);
        f.ckpt_save(&mut wf);
        wf.end_section();
        wr.begin_section(1);
        r.ckpt_save(&mut wr);
        wr.end_section();
        assert_eq!(wf.finish(), wr.finish());
    }

    #[test]
    fn global_channels_address_every_ring() {
        let mut f = fabric(4);
        assert_eq!(f.ring_count(), 4);
        assert_eq!(f.channels(), 32);
        // Same node (3), different rings: independent slots.
        f.insert(0, 3, 10).unwrap();
        f.insert(0, 8 + 3, 11).unwrap();
        f.insert(0, 24 + 3, 12).unwrap();
        assert!(f.contains(3, 10));
        assert!(f.contains(11, 11));
        assert!(!f.contains(3, 11));
        assert_eq!(f.find(12), Some(27));
        assert_eq!(f.total_occupancy(), 3);
    }

    #[test]
    fn node_transmitter_serializes_across_rings() {
        let mut f = fabric(2);
        // Node 0 inserts on ring 0 then ring 1 at the same instant:
        // the single tunable transmitter serializes them.
        let a = f.insert(0, 0, 1).unwrap();
        let b = f.insert(0, 8, 2).unwrap();
        assert_eq!(a, 656);
        assert_eq!(b, 1312);
        // A different node is unaffected.
        let c = f.insert(0, 5, 3).unwrap();
        assert_eq!(c, 656);
    }

    #[test]
    fn rejections_do_not_consume_transmitter_time() {
        let mut f = fabric(2);
        f.insert(0, 0, 1).unwrap();
        // Duplicate on the other ring's same page id is fine...
        f.insert(0, 8, 1).unwrap();
        // ...but a duplicate on the same channel is rejected without
        // holding the arbiter.
        assert_eq!(f.insert(5000, 0, 1), Err(RingError::Duplicate));
        let t = f.insert(5000, 0, 2).unwrap();
        assert_eq!(t, 5000 + 656);
    }

    #[test]
    fn failing_one_ring_channel_leaves_siblings_alive() {
        let mut f = fabric(2);
        f.insert(0, 2, 20).unwrap();
        f.insert(0, 8 + 2, 21).unwrap();
        let lost = f.fail_channel(2);
        assert_eq!(lost, vec![20]);
        assert!(f.is_dead(2));
        assert!(!f.is_dead(8 + 2), "node 2's ring-1 channel survives");
        assert!(f.contains(8 + 2, 21));
        assert_eq!(f.live_channels(), 15);
        assert_eq!(f.insert(10, 2, 22), Err(RingError::ChannelDead));
        f.insert(10, 8 + 2, 22).unwrap();
    }

    #[test]
    fn multi_ring_checkpoint_round_trips() {
        let mut f = fabric(3);
        f.insert(0, 1, 10).unwrap();
        f.insert(100, 8 + 1, 11).unwrap();
        f.insert(200, 16 + 5, 12).unwrap();
        f.fail_channel(16 + 7);
        let mut w = CkptWriter::new();
        w.begin_section(1);
        f.ckpt_save(&mut w);
        w.end_section();
        let bytes = w.finish();
        let mut g = fabric(3);
        let mut r = CkptReader::new(&bytes).unwrap();
        r.begin_section(1).unwrap();
        g.ckpt_restore(&mut r).unwrap();
        r.end_section().unwrap();
        r.finish().unwrap();
        let mut w2 = CkptWriter::new();
        w2.begin_section(1);
        g.ckpt_save(&mut w2);
        w2.end_section();
        assert_eq!(bytes, w2.finish());
        assert!(g.contains(8 + 1, 11));
        assert!(g.is_dead(16 + 7));
        // Restored arbiters keep serializing from where they were.
        let t = g.insert(0, 1, 99).unwrap();
        assert!(t >= 656);
    }
}
