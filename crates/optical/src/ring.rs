//! The WDM optical ring as a delay-line page store.
//!
//! Timing model. A page inserted on a channel at time `t0` (insertion
//! itself is serialized on the node's fixed transmitter at the channel
//! rate) circulates forever, passing any reader at `t0 + k * R` for
//! `k = 1, 2, ...`, where `R` is the ring round-trip latency. A snoop
//! issued at time `now` therefore completes at the first pass not
//! earlier than `now`, plus the page transfer time off the channel.
//! Removing a page (after the disk-cache ACK or a victim re-map) frees
//! its slot immediately — the interface simply stops regenerating those
//! bits.

use crate::Page;
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use nw_sim::{Bandwidth, Resource, Time};

/// Ring geometry and timing.
#[derive(Debug, Clone, Copy)]
pub struct RingConfig {
    /// Number of WDM cache channels (one per node; paper: 8).
    pub channels: usize,
    /// Page slots stored per channel (paper: 64 KB / 4 KB = 16).
    pub slots_per_channel: usize,
    /// Round-trip latency of the fiber loop (paper: 52 µs = 10400 pc).
    pub round_trip: Time,
    /// Per-channel transmission rate (paper: 1.25 GB/s).
    pub rate: Bandwidth,
    /// Page size in bytes.
    pub page_bytes: u64,
}

impl RingConfig {
    /// The paper's Table 1 ring.
    pub fn paper_default() -> Self {
        RingConfig {
            channels: 8,
            slots_per_channel: 16,
            round_trip: nw_sim::time::usecs(52),
            rate: Bandwidth::from_gbytes_per_sec_milli(1250),
            page_bytes: 4096,
        }
    }

    /// Delay-line storage capacity in bytes, from the §3.2 equation:
    /// `capacity = channels * round_trip * rate` (round-trip already
    /// folds fiber length over the speed of light).
    pub fn capacity_bytes_physical(&self) -> u64 {
        // round_trip [pcycles] * 5ns/pc * rate [B/s]
        // = round_trip * rate.transfer bytes; compute via bytes/cycle.
        let per_channel = (self.round_trip as f64 * self.rate.bytes_per_cycle()) as u64;
        self.channels as u64 * per_channel
    }

    /// Usable capacity in bytes given the configured slot count.
    pub fn capacity_bytes_slots(&self) -> u64 {
        (self.channels * self.slots_per_channel) as u64 * self.page_bytes
    }
}

/// Errors from ring operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// The channel's delay-line storage is fully occupied.
    ChannelFull,
    /// The page is already stored on the channel.
    Duplicate,
    /// The channel has failed and no longer stores or accepts pages.
    ChannelDead,
}

#[derive(Debug, Default)]
struct ChannelStats {
    inserts: u64,
    removals: u64,
    snoops: u64,
    peak_occupancy: usize,
}

/// The pages circulating on one channel: a fixed-capacity slot set
/// (PR 3 hot-path layout; see DESIGN.md §11).
///
/// A channel stores at most `slots_per_channel` pages (paper: 16), so
/// membership tests and removals are a linear scan over one cache
/// line or two of `(page, t0)` pairs — faster than any tree or hash
/// walk at this size, and allocation-free after construction.
/// Slot order is insertion order and is NOT observable: the only
/// whole-set iteration, [`OpticalRing::fail_channel`], sorts its
/// output to keep the old `BTreeMap` ascending-page order.
#[derive(Debug)]
struct SlotSet {
    slots: Vec<(Page, Time)>,
}

impl SlotSet {
    fn with_capacity(cap: usize) -> Self {
        SlotSet {
            slots: Vec::with_capacity(cap),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.slots.len()
    }

    /// Insertion-completion time of `page`, if stored.
    #[inline]
    fn get(&self, page: Page) -> Option<Time> {
        self.slots
            .iter()
            .find(|&&(p, _)| p == page)
            .map(|&(_, t0)| t0)
    }

    #[inline]
    fn contains(&self, page: Page) -> bool {
        self.slots.iter().any(|&(p, _)| p == page)
    }

    /// Add `page`; the caller has already rejected duplicates and
    /// checked capacity.
    #[inline]
    fn insert(&mut self, page: Page, t0: Time) {
        debug_assert!(!self.contains(page));
        self.slots.push((page, t0));
    }

    /// Drop `page`, returning whether it was stored.
    #[inline]
    fn remove(&mut self, page: Page) -> bool {
        match self.slots.iter().position(|&(p, _)| p == page) {
            Some(i) => {
                self.slots.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Remove every page, returning them in ascending page order.
    fn drain_sorted(&mut self) -> Vec<Page> {
        let mut pages: Vec<Page> = self.slots.drain(..).map(|(p, _)| p).collect();
        pages.sort_unstable();
        pages
    }
}

#[derive(Debug)]
struct Channel {
    /// Fixed transmitter: one insertion at a time.
    tx: Resource,
    /// Stored pages -> time their insertion completed.
    pages: SlotSet,
    /// A failed channel drops its circulating pages and rejects
    /// further traffic until the end of the run.
    dead: bool,
    stats: ChannelStats,
}

/// The machine-wide optical ring.
#[derive(Debug)]
pub struct OpticalRing {
    cfg: RingConfig,
    channels: Vec<Channel>,
}

impl OpticalRing {
    /// An empty ring.
    pub fn new(cfg: RingConfig) -> Self {
        assert!(cfg.channels > 0 && cfg.slots_per_channel > 0);
        OpticalRing {
            channels: (0..cfg.channels)
                .map(|_| Channel {
                    tx: Resource::new("ring-tx"),
                    pages: SlotSet::with_capacity(cfg.slots_per_channel),
                    dead: false,
                    stats: ChannelStats::default(),
                })
                .collect(),
            cfg,
        }
    }

    /// The ring configuration.
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// Whether channel `ch` can accept another page. A dead channel
    /// never has room.
    pub fn has_room(&self, ch: usize) -> bool {
        let chan = &self.channels[ch];
        !chan.dead && chan.pages.len() < self.cfg.slots_per_channel
    }

    /// Whether channel `ch` has failed.
    pub fn is_dead(&self, ch: usize) -> bool {
        self.channels[ch].dead
    }

    /// Number of channels still operational.
    pub fn live_channels(&self) -> usize {
        self.channels.iter().filter(|c| !c.dead).count()
    }

    /// Fail channel `ch`: every page circulating on it is destroyed
    /// (the regenerator stops, the bits decay within one round trip)
    /// and the channel rejects all further inserts and snoops. Returns
    /// the destroyed pages so the caller can re-issue their swap-outs.
    pub fn fail_channel(&mut self, ch: usize) -> Vec<Page> {
        let chan = &mut self.channels[ch];
        chan.dead = true;
        // Ascending page order, as the old ordered map produced: the
        // caller re-issues a swap-out per lost page and the experiment
        // grids are bit-identical only if that order is stable.
        chan.pages.drain_sorted()
    }

    /// Number of channels (live or dead).
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Pages currently stored on channel `ch`.
    pub fn occupancy(&self, ch: usize) -> usize {
        self.channels[ch].pages.len()
    }

    /// Total pages stored across all channels.
    pub fn total_occupancy(&self) -> usize {
        self.channels.iter().map(|c| c.pages.len()).sum()
    }

    /// Insert `page` on channel `ch` at `now`. Returns the time the
    /// page is fully on the ring (insertion serializes on the channel's
    /// fixed transmitter at the channel rate).
    pub fn insert(&mut self, now: Time, ch: usize, page: Page) -> Result<Time, RingError> {
        if self.channels[ch].dead {
            return Err(RingError::ChannelDead);
        }
        if !self.has_room(ch) {
            return Err(RingError::ChannelFull);
        }
        let chan = &mut self.channels[ch];
        if chan.pages.contains(page) {
            return Err(RingError::Duplicate);
        }
        let dur = self.cfg.rate.transfer_cycles(self.cfg.page_bytes);
        let grant = chan.tx.acquire(now, dur);
        chan.pages.insert(page, grant.end);
        chan.stats.inserts += 1;
        chan.stats.peak_occupancy = chan.stats.peak_occupancy.max(chan.pages.len());
        Ok(grant.end)
    }

    /// Whether `page` is stored on channel `ch`.
    pub fn contains(&self, ch: usize, page: Page) -> bool {
        self.channels[ch].pages.contains(page)
    }

    /// Locate the channel storing `page`, if any (linear scan across
    /// channels; used as a consistency check — the VM layer normally
    /// knows the channel from the page's last translation).
    pub fn find(&self, page: Page) -> Option<usize> {
        self.channels.iter().position(|c| c.pages.contains(page))
    }

    /// When a snoop of `page` on `ch`, issued at `now`, completes: the
    /// first circulation pass at or after `now` plus the off-channel
    /// transfer. `None` if the page is not on the channel.
    pub fn snoop_ready(&mut self, now: Time, ch: usize, page: Page) -> Option<Time> {
        let cfg_rt = self.cfg.round_trip;
        let xfer = self.cfg.rate.transfer_cycles(self.cfg.page_bytes);
        let chan = &mut self.channels[ch];
        let t0 = chan.pages.get(page)?;
        chan.stats.snoops += 1;
        let pass = if now <= t0 {
            t0 + cfg_rt
        } else {
            let k = (now - t0).div_ceil(cfg_rt).max(1);
            t0 + k * cfg_rt
        };
        Some(pass + xfer)
    }

    /// Remove `page` from channel `ch`, freeing its slot. Returns true
    /// if it was present.
    pub fn remove(&mut self, ch: usize, page: Page) -> bool {
        let chan = &mut self.channels[ch];
        let was = chan.pages.remove(page);
        if was {
            chan.stats.removals += 1;
        }
        was
    }

    /// Insertions performed on channel `ch`.
    pub fn inserts(&self, ch: usize) -> u64 {
        self.channels[ch].stats.inserts
    }

    /// Removals performed on channel `ch`.
    pub fn removals(&self, ch: usize) -> u64 {
        self.channels[ch].stats.removals
    }

    /// Snoops performed on channel `ch`.
    pub fn snoops(&self, ch: usize) -> u64 {
        self.channels[ch].stats.snoops
    }

    /// Peak simultaneous occupancy of channel `ch`.
    pub fn peak_occupancy(&self, ch: usize) -> usize {
        self.channels[ch].stats.peak_occupancy
    }

    /// Serialize every channel: transmitter, stored pages in slot
    /// order, dead flag and statistics. Geometry is config.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.usize(self.channels.len());
        for chan in &self.channels {
            chan.tx.ckpt_save(w);
            w.usize(chan.pages.slots.len());
            for &(page, t0) in &chan.pages.slots {
                w.u64(page);
                w.time(t0);
            }
            w.bool(chan.dead);
            w.u64(chan.stats.inserts);
            w.u64(chan.stats.removals);
            w.u64(chan.stats.snoops);
            w.usize(chan.stats.peak_occupancy);
        }
    }

    /// Overlay state saved by [`OpticalRing::ckpt_save`] onto a ring
    /// with the same configuration.
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.usize()?;
        if n != self.channels.len() {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("ring has {n} channels, expected {}", self.channels.len()),
            });
        }
        for chan in &mut self.channels {
            chan.tx.ckpt_restore(r)?;
            let slots = r.usize()?;
            if slots > self.cfg.slots_per_channel {
                return Err(CkptError::Invalid {
                    offset: r.offset(),
                    what: format!(
                        "channel holds {slots} pages, capacity is {}",
                        self.cfg.slots_per_channel
                    ),
                });
            }
            chan.pages.slots.clear();
            for _ in 0..slots {
                let page = r.u64()?;
                let t0 = r.time()?;
                chan.pages.slots.push((page, t0));
            }
            chan.dead = r.bool()?;
            chan.stats.inserts = r.u64()?;
            chan.stats.removals = r.u64()?;
            chan.stats.snoops = r.u64()?;
            chan.stats.peak_occupancy = r.usize()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> OpticalRing {
        OpticalRing::new(RingConfig::paper_default())
    }

    #[test]
    fn capacity_matches_paper() {
        let cfg = RingConfig::paper_default();
        // Physical: 8 channels * 52us * 1.25GB/s = 520_000 B (~512 KB).
        assert_eq!(cfg.capacity_bytes_physical(), 520_000);
        // Slot-configured: 8 * 16 * 4KB = 512 KB exactly.
        assert_eq!(cfg.capacity_bytes_slots(), 524_288);
    }

    #[test]
    fn insert_and_contains() {
        let mut r = ring();
        let on_ring = r.insert(100, 0, 42).unwrap();
        // 4KB at 6.25 B/cycle = 656 cycles.
        assert_eq!(on_ring, 100 + 656);
        assert!(r.contains(0, 42));
        assert!(!r.contains(1, 42));
        assert_eq!(r.find(42), Some(0));
        assert_eq!(r.occupancy(0), 1);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut r = ring();
        r.insert(0, 0, 1).unwrap();
        assert_eq!(r.insert(10, 0, 1), Err(RingError::Duplicate));
    }

    #[test]
    fn channel_fills_at_slot_capacity() {
        let mut r = ring();
        for p in 0..16u64 {
            r.insert(0, 3, p).unwrap();
        }
        assert!(!r.has_room(3));
        assert_eq!(r.insert(0, 3, 99), Err(RingError::ChannelFull));
        // Other channels unaffected.
        assert!(r.has_room(2));
        assert_eq!(r.total_occupancy(), 16);
    }

    #[test]
    fn remove_frees_slot() {
        let mut r = ring();
        for p in 0..16u64 {
            r.insert(0, 0, p).unwrap();
        }
        assert!(r.remove(0, 5));
        assert!(!r.remove(0, 5));
        assert!(r.has_room(0));
        r.insert(1000, 0, 99).unwrap();
        assert_eq!(r.peak_occupancy(0), 16);
    }

    #[test]
    fn back_to_back_inserts_serialize_on_tx() {
        let mut r = ring();
        let a = r.insert(0, 0, 1).unwrap();
        let b = r.insert(0, 0, 2).unwrap();
        assert_eq!(a, 656);
        assert_eq!(b, 1312);
    }

    #[test]
    fn snoop_waits_for_circulation() {
        let mut r = ring();
        let t0 = r.insert(0, 0, 7).unwrap(); // on ring at 656
        // Snoop issued immediately: page passes reader at t0 + 10400.
        let ready = r.snoop_ready(100, 0, 7).unwrap();
        assert_eq!(ready, t0 + 10_400 + 656);
        // Much later snoop: wait less than one full round trip.
        let now = t0 + 3 * 10_400 + 5_000;
        let ready2 = r.snoop_ready(now, 0, 7).unwrap();
        assert!(ready2 >= now);
        assert!(ready2 - now <= 10_400 + 656);
        // Pass times are aligned on t0 + k*R.
        assert_eq!((ready2 - 656 - t0) % 10_400, 0);
    }

    #[test]
    fn snoop_missing_page_is_none() {
        let mut r = ring();
        assert_eq!(r.snoop_ready(0, 0, 9), None);
    }

    #[test]
    fn failed_channel_destroys_pages_and_rejects_traffic() {
        let mut r = ring();
        r.insert(0, 1, 10).unwrap();
        r.insert(0, 1, 11).unwrap();
        r.insert(0, 2, 20).unwrap();
        let mut lost = r.fail_channel(1);
        lost.sort_unstable();
        assert_eq!(lost, vec![10, 11]);
        assert!(r.is_dead(1));
        assert!(!r.has_room(1));
        assert_eq!(r.occupancy(1), 0);
        assert_eq!(r.insert(50, 1, 12), Err(RingError::ChannelDead));
        assert_eq!(r.snoop_ready(50, 1, 10), None);
        assert_eq!(r.live_channels(), 7);
        // Other channels keep working.
        assert!(r.contains(2, 20));
        r.insert(60, 2, 21).unwrap();
    }

    #[test]
    fn stats_track_operations() {
        let mut r = ring();
        r.insert(0, 2, 1).unwrap();
        r.snoop_ready(10, 2, 1);
        r.remove(2, 1);
        assert_eq!(r.inserts(2), 1);
        assert_eq!(r.snoops(2), 1);
        assert_eq!(r.removals(2), 1);
    }
}
