//! # nw-optical — the optical network/write-cache hybrid
//!
//! The paper's core contribution (§3.2): a WDM optical ring whose
//! fiber acts as a **delay-line memory**. Each node owns one *cache
//! channel* it alone may write; swapped-out pages circulate on the
//! channel until the responsible I/O node copies them into its disk
//! controller cache (then ACKs the swapper, freeing the slot) or until
//! a faulting node snoops them back into memory (victim caching).
//!
//! Three modules:
//!
//! * [`ring`] — the physical ring: channel slot storage, insertion via
//!   the node's fixed transmitter, and snoop timing (a reader must wait
//!   for the page's bits to circulate past its receiver: up to one
//!   round-trip of 52 µs).
//! * [`fabric`] — a stack of identical rings behind one global channel
//!   namespace (`gc = ring * channels + node`), with a per-node
//!   tunable-transmitter arbiter; a single-ring fabric is a bit-exact
//!   drop-in for [`OpticalRing`]. Used by generated topologies that
//!   shard pages across several rings.
//! * [`interface`] — the NWCache interface electronics at an
//!   I/O-enabled node: one FIFO per cache channel recording swap-out
//!   notifications, drained *most-loaded channel first* and exhausting
//!   a channel before switching (this ordering is what produces the
//!   write-combining wins of Tables 5/6).
//!
//! The storage-capacity equation of §3.2 is implemented and tested:
//! `capacity_bits = channels * fiber_length * rate / speed_of_light`.
//!
//! ```
//! use nw_optical::{OpticalRing, RingConfig, NwcInterface};
//!
//! let mut ring = OpticalRing::new(RingConfig::paper_default());
//! let mut iface = NwcInterface::new(8);
//!
//! // Node 2 swaps page 77 out onto its cache channel.
//! let on_ring = ring.insert(1_000, 2, 77).unwrap();
//! iface.enqueue(2, 2, 77);
//!
//! // A victim read must wait for the bits to circulate past the
//! // reader: at most one 52 us round-trip plus the transfer.
//! let ready = ring.snoop_ready(on_ring, 2, 77).unwrap();
//! assert!(ready - on_ring <= 10_400 + 656);
//!
//! // The victim read cancels the pending disk write.
//! assert!(iface.cancel(2, 77).is_some());
//! ring.remove(2, 77);
//! assert_eq!(ring.total_occupancy(), 0);
//! ```

pub mod fabric;
pub mod interface;
pub mod ring;

pub use fabric::RingFabric;
pub use interface::{NwcInterface, SwapRecord};
pub use ring::{OpticalRing, RingConfig, RingError};

/// A virtual page number (same space as `nw-disk`).
pub type Page = u64;
