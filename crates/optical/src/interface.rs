//! NWCache interface electronics at an I/O-enabled node.
//!
//! When a node swaps a page out to the ring it sends a control message
//! to the NWCache interface of the I/O node owning the page's disk;
//! the interface records `(swapping node, page)` in a FIFO associated
//! with that node's cache channel (§3.2). Whenever the attached disk
//! controller has cache room, the interface snoops **the most heavily
//! loaded channel** and copies pages *in swap-out order*, exhausting
//! the current channel before switching — the two properties that give
//! the disk cache runs of consecutive pages to combine.
//!
//! A victim read (fault served from the ring) cancels the page's FIFO
//! entry: the page no longer needs to reach the disk.

use crate::Page;
use nw_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use std::collections::VecDeque;

/// A swap-out notification queued at the interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapRecord {
    /// The node that swapped the page out (owns the ring slot).
    pub origin: u32,
    /// The swapped-out page.
    pub page: Page,
}

/// The per-I/O-node NWCache interface state.
#[derive(Debug)]
pub struct NwcInterface {
    /// One FIFO per cache channel (channel i belongs to node i).
    fifos: Vec<VecDeque<SwapRecord>>,
    /// Channel currently being drained (exhaust before switching).
    current: Option<usize>,
    enqueued: u64,
    drained: u64,
    cancelled: u64,
}

impl NwcInterface {
    /// An interface tracking `channels` cache channels.
    pub fn new(channels: usize) -> Self {
        NwcInterface {
            fifos: (0..channels).map(|_| VecDeque::new()).collect(),
            current: None,
            enqueued: 0,
            drained: 0,
            cancelled: 0,
        }
    }

    /// Record a swap-out of `page` by `origin` on channel `channel`.
    pub fn enqueue(&mut self, channel: usize, origin: u32, page: Page) {
        self.fifos[channel].push_back(SwapRecord { origin, page });
        self.enqueued += 1;
    }

    /// Cancel the FIFO entry for `page` on `channel` (victim read
    /// re-mapped the page to memory). Returns the cancelled record.
    pub fn cancel(&mut self, channel: usize, page: Page) -> Option<SwapRecord> {
        let fifo = &mut self.fifos[channel];
        let idx = fifo.iter().position(|r| r.page == page)?;
        let rec = fifo.remove(idx);
        self.cancelled += 1;
        rec
    }

    /// Pop the next page to copy to the disk cache, following the
    /// paper's policy: keep draining the current channel until empty,
    /// then switch to the most heavily loaded channel. Returns the
    /// channel and the record, or `None` when all FIFOs are empty.
    pub fn next_to_drain(&mut self) -> Option<(usize, SwapRecord)> {
        if let Some(ch) = self.current {
            if let Some(rec) = self.fifos[ch].pop_front() {
                self.drained += 1;
                return Some((ch, rec));
            }
            self.current = None;
        }
        // Most-loaded channel; ties broken by lowest channel id for
        // determinism.
        let (ch, _) = self
            .fifos
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.len().cmp(&b.len()).then(ib.cmp(ia)))?;
        if self.fifos[ch].is_empty() {
            return None;
        }
        self.current = Some(ch);
        let rec = self.fifos[ch].pop_front().expect("non-empty");
        self.drained += 1;
        Some((ch, rec))
    }

    /// Put a record back at the head of its channel FIFO (a drain
    /// attempt failed because the disk cache filled concurrently).
    pub fn requeue_front(&mut self, channel: usize, rec: SwapRecord) {
        self.fifos[channel].push_front(rec);
        self.drained -= 1;
    }

    /// Drop every record queued for `channel` — the channel failed, so
    /// its pages no longer exist on the ring and must reach the disk
    /// some other way. Returns the abandoned records in FIFO order so
    /// the caller can re-issue their swap-outs.
    pub fn fail_channel(&mut self, channel: usize) -> Vec<SwapRecord> {
        if self.current == Some(channel) {
            self.current = None;
        }
        let lost: Vec<SwapRecord> = self.fifos[channel].drain(..).collect();
        self.cancelled += lost.len() as u64;
        lost
    }

    /// Peek the channel that `next_to_drain` would use, without
    /// popping.
    pub fn peek_drain_channel(&self) -> Option<usize> {
        if let Some(ch) = self.current {
            if !self.fifos[ch].is_empty() {
                return Some(ch);
            }
        }
        let (ch, f) = self
            .fifos
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.len().cmp(&b.len()).then(ib.cmp(ia)))?;
        if f.is_empty() {
            None
        } else {
            Some(ch)
        }
    }

    /// Total records waiting across all FIFOs.
    pub fn pending(&self) -> usize {
        self.fifos.iter().map(|f| f.len()).sum()
    }

    /// Records waiting on `channel`.
    pub fn pending_on(&self, channel: usize) -> usize {
        self.fifos[channel].len()
    }

    /// Total swap-outs ever enqueued.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total records drained to the disk cache.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Total records cancelled by victim reads.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Serialize every channel FIFO (in drain order), the drain
    /// pointer and the counters.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.usize(self.fifos.len());
        for fifo in &self.fifos {
            w.usize(fifo.len());
            for rec in fifo {
                w.u32(rec.origin);
                w.u64(rec.page);
            }
        }
        match self.current {
            None => w.bool(false),
            Some(ch) => {
                w.bool(true);
                w.usize(ch);
            }
        }
        w.u64(self.enqueued);
        w.u64(self.drained);
        w.u64(self.cancelled);
    }

    /// Overlay state saved by [`NwcInterface::ckpt_save`] onto an
    /// interface tracking the same number of channels.
    pub fn ckpt_restore(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.usize()?;
        if n != self.fifos.len() {
            return Err(CkptError::Invalid {
                offset: r.offset(),
                what: format!("interface has {n} fifos, expected {}", self.fifos.len()),
            });
        }
        for fifo in &mut self.fifos {
            let len = r.usize()?;
            fifo.clear();
            for _ in 0..len {
                let origin = r.u32()?;
                let page = r.u64()?;
                fifo.push_back(SwapRecord { origin, page });
            }
        }
        self.current = if r.bool()? {
            let ch = r.usize()?;
            if ch >= self.fifos.len() {
                return Err(CkptError::Invalid {
                    offset: r.offset(),
                    what: format!("drain pointer {ch} out of range"),
                });
            }
            Some(ch)
        } else {
            None
        };
        self.enqueued = r.u64()?;
        self.drained = r.u64()?;
        self.cancelled = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_swap_order() {
        let mut i = NwcInterface::new(8);
        i.enqueue(2, 2, 10);
        i.enqueue(2, 2, 11);
        i.enqueue(2, 2, 12);
        assert_eq!(i.next_to_drain(), Some((2, SwapRecord { origin: 2, page: 10 })));
        assert_eq!(i.next_to_drain(), Some((2, SwapRecord { origin: 2, page: 11 })));
        assert_eq!(i.next_to_drain(), Some((2, SwapRecord { origin: 2, page: 12 })));
        assert_eq!(i.next_to_drain(), None);
    }

    #[test]
    fn picks_most_loaded_channel_first() {
        let mut i = NwcInterface::new(4);
        i.enqueue(0, 0, 1);
        i.enqueue(3, 3, 7);
        i.enqueue(3, 3, 8);
        assert_eq!(i.peek_drain_channel(), Some(3));
        let (ch, _) = i.next_to_drain().unwrap();
        assert_eq!(ch, 3);
    }

    #[test]
    fn exhausts_current_channel_before_switching() {
        let mut i = NwcInterface::new(4);
        i.enqueue(1, 1, 100);
        i.enqueue(1, 1, 101);
        // Start draining channel 1.
        assert_eq!(i.next_to_drain().unwrap().0, 1);
        // Channel 2 becomes more loaded, but channel 1 is not empty.
        i.enqueue(2, 2, 200);
        i.enqueue(2, 2, 201);
        i.enqueue(2, 2, 202);
        assert_eq!(i.next_to_drain().unwrap().0, 1, "must exhaust current");
        assert_eq!(i.next_to_drain().unwrap().0, 2, "then switch");
    }

    #[test]
    fn cancel_removes_mid_queue() {
        let mut i = NwcInterface::new(2);
        i.enqueue(0, 0, 1);
        i.enqueue(0, 0, 2);
        i.enqueue(0, 0, 3);
        assert_eq!(i.cancel(0, 2), Some(SwapRecord { origin: 0, page: 2 }));
        assert_eq!(i.cancel(0, 2), None);
        assert_eq!(i.next_to_drain().unwrap().1.page, 1);
        assert_eq!(i.next_to_drain().unwrap().1.page, 3);
        assert_eq!(i.cancelled(), 1);
    }

    #[test]
    fn pending_counts() {
        let mut i = NwcInterface::new(3);
        assert_eq!(i.pending(), 0);
        i.enqueue(0, 0, 1);
        i.enqueue(2, 2, 9);
        assert_eq!(i.pending(), 2);
        assert_eq!(i.pending_on(0), 1);
        assert_eq!(i.pending_on(1), 0);
        i.next_to_drain();
        assert_eq!(i.pending(), 1);
        assert_eq!(i.enqueued(), 2);
        assert_eq!(i.drained(), 1);
    }

    #[test]
    fn fail_channel_abandons_records_in_order() {
        let mut i = NwcInterface::new(4);
        i.enqueue(1, 1, 10);
        i.enqueue(1, 1, 11);
        i.enqueue(2, 2, 20);
        // Start draining channel 1 so `current` points at it.
        assert_eq!(i.next_to_drain().unwrap().0, 1);
        let lost = i.fail_channel(1);
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].page, 11);
        assert_eq!(i.pending_on(1), 0);
        // The drain pointer moved off the failed channel.
        assert_eq!(i.next_to_drain().unwrap().0, 2);
    }

    #[test]
    fn tie_breaks_deterministically() {
        let mut i = NwcInterface::new(4);
        i.enqueue(1, 1, 10);
        i.enqueue(2, 2, 20);
        // Equal load: lowest channel id wins.
        assert_eq!(i.peek_drain_channel(), Some(1));
    }
}
