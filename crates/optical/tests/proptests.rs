//! Randomized property tests for the optical ring and NWCache
//! interface, driven by the in-tree deterministic [`Pcg32`].

use nw_optical::{NwcInterface, OpticalRing, RingConfig};
use nw_sim::Pcg32;

const CASES: u64 = 48;

fn ring() -> OpticalRing {
    OpticalRing::new(RingConfig::paper_default())
}

/// Channel occupancy never exceeds the slot capacity, no matter the
/// insert/remove interleaving.
#[test]
fn occupancy_bounded() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x0071C, case);
        let n = rng.gen_range(1, 200) as usize;
        let mut r = ring();
        let mut t = 0;
        for _ in 0..n {
            let page = rng.gen_range(0, 64);
            if rng.gen_bool(0.5) {
                let _ = r.insert(t, 0, page);
            } else {
                r.remove(0, page);
            }
            assert!(r.occupancy(0) <= 16, "case {case}");
            t += 100;
        }
    }
}

/// A page inserted and not removed is always snoopable, and the snoop
/// completes within one round trip + transfer of the request.
#[test]
fn snoop_within_round_trip() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x0071D, case);
        let page = rng.gen_range(0, 1000);
        let at = rng.gen_range(0, 100_000);
        let later = rng.gen_range(0, 1_000_000);
        let mut r = ring();
        let on_ring = r.insert(at, 3, page).unwrap();
        let now = on_ring + later;
        let ready = r.snoop_ready(now, 3, page).unwrap();
        assert!(ready >= now, "case {case}");
        let rt = RingConfig::paper_default().round_trip;
        let xfer = 656;
        assert!(
            ready - now <= rt + xfer,
            "case {case}: waited {} > {}",
            ready - now,
            rt + xfer
        );
        // Pass times are phase-aligned with the insertion.
        assert_eq!((ready - xfer - on_ring) % rt, 0, "case {case}");
    }
}

/// Insert/remove round-trips leave the ring empty and stats balanced.
#[test]
fn insert_remove_balanced() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x0071E, case);
        let n = rng.gen_range(1, 16) as usize;
        let mut pages = std::collections::HashSet::new();
        while pages.len() < n {
            pages.insert(rng.gen_range(0, 1000));
        }
        let mut r = ring();
        for &p in &pages {
            r.insert(0, 2, p).unwrap();
        }
        assert_eq!(r.occupancy(2), pages.len(), "case {case}");
        for &p in &pages {
            assert!(r.remove(2, p), "case {case}");
        }
        assert_eq!(r.occupancy(2), 0, "case {case}");
        assert_eq!(r.inserts(2), pages.len() as u64, "case {case}");
        assert_eq!(r.removals(2), pages.len() as u64, "case {case}");
    }
}

/// The interface FIFO conserves records: enqueued = drained +
/// cancelled + pending, and drained pages per channel come out in
/// insertion order.
#[test]
fn interface_conserves_records() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x0071F, case);
        let n = rng.gen_range(1, 200) as usize;
        let mut i = NwcInterface::new(4);
        let mut model: Vec<std::collections::VecDeque<u64>> =
            (0..4).map(|_| std::collections::VecDeque::new()).collect();
        for _ in 0..n {
            let ch = rng.gen_below(4) as usize;
            let page = rng.gen_range(0, 100);
            match rng.gen_below(3) {
                0 => {
                    i.enqueue(ch, ch as u32, page);
                    model[ch].push_back(page);
                }
                1 => {
                    if let Some((dch, rec)) = i.next_to_drain() {
                        let expect = model[dch].pop_front().unwrap();
                        assert_eq!(rec.page, expect, "case {case}: drain out of order");
                    }
                }
                _ => {
                    let cancelled = i.cancel(ch, page);
                    let pos = model[ch].iter().position(|&p| p == page);
                    assert_eq!(cancelled.is_some(), pos.is_some(), "case {case}");
                    if let Some(pos) = pos {
                        model[ch].remove(pos);
                    }
                }
            }
        }
        assert_eq!(
            i.pending() as u64,
            model.iter().map(|m| m.len() as u64).sum::<u64>(),
            "case {case}"
        );
        assert_eq!(
            i.enqueued(),
            i.drained() + i.cancelled() + i.pending() as u64,
            "case {case}"
        );
    }
}

/// Draining everything visits every record exactly once.
#[test]
fn drain_visits_all() {
    for case in 0..CASES {
        let mut rng = Pcg32::new(0x00720, case);
        let mut i = NwcInterface::new(4);
        let mut total = 0;
        for ch in 0..4usize {
            let n = rng.gen_below(20) as usize;
            for k in 0..n {
                i.enqueue(ch, ch as u32, (ch * 100 + k) as u64);
                total += 1;
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some((_, rec)) = i.next_to_drain() {
            assert!(
                seen.insert(rec.page),
                "case {case}: page {} drained twice",
                rec.page
            );
        }
        assert_eq!(seen.len(), total, "case {case}");
        assert_eq!(i.pending(), 0, "case {case}");
    }
}
