//! Property tests for the optical ring and NWCache interface.

use nw_optical::{NwcInterface, OpticalRing, RingConfig};
use proptest::prelude::*;

fn ring() -> OpticalRing {
    OpticalRing::new(RingConfig::paper_default())
}

proptest! {
    /// Channel occupancy never exceeds the slot capacity, no matter
    /// the insert/remove interleaving.
    #[test]
    fn occupancy_bounded(ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..200)) {
        let mut r = ring();
        let mut t = 0;
        for &(page, insert) in &ops {
            if insert {
                let _ = r.insert(t, 0, page);
            } else {
                r.remove(0, page);
            }
            prop_assert!(r.occupancy(0) <= 16);
            t += 100;
        }
    }

    /// A page inserted and not removed is always snoopable, and the
    /// snoop completes within one round trip + transfer of the
    /// request.
    #[test]
    fn snoop_within_round_trip(page in 0u64..1000, at in 0u64..100_000, later in 0u64..1_000_000) {
        let mut r = ring();
        let on_ring = r.insert(at, 3, page).unwrap();
        let now = on_ring + later;
        let ready = r.snoop_ready(now, 3, page).unwrap();
        prop_assert!(ready >= now);
        let rt = RingConfig::paper_default().round_trip;
        let xfer = 656;
        prop_assert!(ready - now <= rt + xfer, "waited {} > {}", ready - now, rt + xfer);
        // Pass times are phase-aligned with the insertion.
        prop_assert_eq!((ready - xfer - on_ring) % rt, 0);
    }

    /// Insert/remove round-trips leave the ring empty and stats
    /// balanced.
    #[test]
    fn insert_remove_balanced(pages in proptest::collection::hash_set(0u64..1000, 1..16)) {
        let mut r = ring();
        for &p in &pages {
            r.insert(0, 2, p).unwrap();
        }
        prop_assert_eq!(r.occupancy(2), pages.len());
        for &p in &pages {
            prop_assert!(r.remove(2, p));
        }
        prop_assert_eq!(r.occupancy(2), 0);
        prop_assert_eq!(r.inserts(2), pages.len() as u64);
        prop_assert_eq!(r.removals(2), pages.len() as u64);
    }

    /// The interface FIFO conserves records: enqueued = drained +
    /// cancelled + pending, and drained pages per channel come out in
    /// insertion order.
    #[test]
    fn interface_conserves_records(
        ops in proptest::collection::vec((0usize..4, 0u64..100, 0u8..3), 1..200)
    ) {
        let mut i = NwcInterface::new(4);
        let mut model: Vec<std::collections::VecDeque<u64>> =
            (0..4).map(|_| std::collections::VecDeque::new()).collect();
        for &(ch, page, op) in &ops {
            match op {
                0 => {
                    i.enqueue(ch, ch as u32, page);
                    model[ch].push_back(page);
                }
                1 => {
                    if let Some((dch, rec)) = i.next_to_drain() {
                        let expect = model[dch].pop_front().unwrap();
                        prop_assert_eq!(rec.page, expect, "drain out of order");
                    }
                }
                _ => {
                    let cancelled = i.cancel(ch, page);
                    let pos = model[ch].iter().position(|&p| p == page);
                    prop_assert_eq!(cancelled.is_some(), pos.is_some());
                    if let Some(pos) = pos {
                        model[ch].remove(pos);
                    }
                }
            }
        }
        prop_assert_eq!(i.pending() as u64, model.iter().map(|m| m.len() as u64).sum::<u64>());
        prop_assert_eq!(i.enqueued(), i.drained() + i.cancelled() + i.pending() as u64);
    }

    /// Draining everything visits every record exactly once.
    #[test]
    fn drain_visits_all(counts in proptest::collection::vec(0usize..20, 4)) {
        let mut i = NwcInterface::new(4);
        let mut total = 0;
        for (ch, &n) in counts.iter().enumerate() {
            for k in 0..n {
                i.enqueue(ch, ch as u32, (ch * 100 + k) as u64);
                total += 1;
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some((_, rec)) = i.next_to_drain() {
            prop_assert!(seen.insert(rec.page), "page {} drained twice", rec.page);
        }
        prop_assert_eq!(seen.len(), total);
        prop_assert_eq!(i.pending(), 0);
    }
}
