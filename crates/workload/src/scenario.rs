//! The stochastic scenario generator: phased, per-node access
//! programs described by dials instead of code.
//!
//! A [`Scenario`] is a list of [`Phase`]s every processor executes in
//! lockstep (separated by barriers). Each phase dials in:
//!
//! * a page-popularity **pattern** — `seq` (striding sweep over the
//!   processor's block partition), `uniform` (uniformly random lines),
//!   or `zipf` (rank-skewed page popularity, hot pages shared by all
//!   processors);
//! * the **working-set size** in pages, the **read/write ratio**, and
//!   the **compute density** per access;
//! * **burst/idle arrival**: after every `burst_len` accesses the
//!   processor idles for `idle` pcycles, modelling phased I/O demand;
//! * **barrier structure**: `barriers` evenly spaced global barriers.
//!
//! Generation draws every random choice from the in-tree
//! [`Pcg32`], split per processor and phase, so a scenario is a pure
//! function of `(spec, nprocs, seed)` — deterministic, sweepable, and
//! safe to regenerate instead of archive.

use crate::trace::Trace;
use nw_apps::layout::{block_partition, PAGE_BYTES};
use nw_apps::{Action, AppBuild, LINE_BYTES};
use nw_sim::Pcg32;

/// Cache lines per 4 KB page.
const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

/// Page-popularity pattern of a phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Stride through the processor's contiguous block partition of
    /// the working set, wrapping around. `stride` is in cache lines
    /// (1 = a dense sequential sweep).
    Sequential {
        /// Line stride between consecutive accesses.
        stride: u64,
    },
    /// Uniformly random lines over the whole working set.
    Uniform,
    /// Zipf-distributed page popularity with exponent `skew` (0 =
    /// uniform over pages; larger = hotter head). Low-numbered pages
    /// are the popular ones, shared by every processor; the accessed
    /// line within a page is uniform.
    Zipf {
        /// Zipf exponent (rank weight `1 / (rank+1)^skew`).
        skew: f64,
    },
}

/// One phase of a scenario — see the module docs for the dials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Page-popularity pattern.
    pub pattern: Pattern,
    /// Working-set size in 4 KB pages.
    pub pages: u64,
    /// Accesses each processor makes in this phase.
    pub accesses: u64,
    /// Fraction of accesses that are writes, in `[0, 1]`.
    pub write_frac: f64,
    /// Compute pcycles charged after every access.
    pub compute: u32,
    /// Accesses per burst; `0` disables burst/idle structure.
    pub burst_len: u32,
    /// Idle pcycles inserted between bursts.
    pub idle: u32,
    /// Evenly spaced global barriers in this phase (>= 1; the last
    /// one closes the phase).
    pub barriers: u32,
}

impl Default for Phase {
    fn default() -> Self {
        Phase {
            pattern: Pattern::Sequential { stride: 1 },
            pages: 512,
            accesses: 16_384,
            write_frac: 0.3,
            compute: 40,
            burst_len: 0,
            idle: 0,
            barriers: 1,
        }
    }
}

/// A complete scenario: a named list of phases.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Workload name (for specs parsed from a string, the spec
    /// itself); becomes the replayed app's name.
    pub name: String,
    /// Phases, executed in order by every processor.
    pub phases: Vec<Phase>,
}

impl Scenario {
    /// Validate every dial, following the config-validation pattern:
    /// fractions in `[0, 1]`, non-empty phase lists, non-zero working
    /// sets and access counts.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("scenario has no phases".into());
        }
        for (i, ph) in self.phases.iter().enumerate() {
            if ph.pages == 0 {
                return Err(format!("phase {i}: working set must be > 0 pages"));
            }
            if ph.accesses == 0 {
                return Err(format!("phase {i}: accesses must be > 0"));
            }
            if !(0.0..=1.0).contains(&ph.write_frac) || ph.write_frac.is_nan() {
                return Err(format!(
                    "phase {i}: write_frac must be in [0, 1], got {}",
                    ph.write_frac
                ));
            }
            if ph.barriers == 0 {
                return Err(format!("phase {i}: barriers must be >= 1"));
            }
            if ph.idle > 0 && ph.burst_len == 0 {
                return Err(format!("phase {i}: idle time needs a burst length"));
            }
            match ph.pattern {
                Pattern::Sequential { stride } => {
                    if stride == 0 {
                        return Err(format!("phase {i}: stride must be >= 1"));
                    }
                }
                Pattern::Zipf { skew } => {
                    if !skew.is_finite() || skew < 0.0 {
                        return Err(format!(
                            "phase {i}: zipf skew must be finite and >= 0, got {skew}"
                        ));
                    }
                }
                Pattern::Uniform => {}
            }
        }
        Ok(())
    }

    /// Shared data footprint: the largest phase working set,
    /// page-rounded by construction.
    pub fn data_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.pages).max().unwrap_or(0) * PAGE_BYTES
    }

    /// Materialize the scenario for `nprocs` processors. Pure in
    /// `(self, nprocs, seed)`; the returned trace round-trips through
    /// either encoding bit-identically.
    ///
    /// # Panics
    /// Panics if the scenario fails [`Scenario::validate`] or
    /// `nprocs == 0`.
    pub fn to_trace(&self, nprocs: usize, seed: u64) -> Trace {
        assert!(nprocs > 0, "need at least one processor");
        self.validate().unwrap_or_else(|e| panic!("invalid scenario: {e}"));
        let procs = (0..nprocs)
            .map(|p| self.gen_proc(p, nprocs, seed))
            .collect();
        Trace {
            name: self.name.clone(),
            data_bytes: self.data_bytes(),
            procs,
        }
    }

    /// Materialize straight to a simulator-ready [`AppBuild`].
    pub fn build(&self, nprocs: usize, seed: u64) -> AppBuild {
        self.to_trace(nprocs, seed).into_build()
    }

    /// Generate one processor's record stream.
    fn gen_proc(&self, p: usize, nprocs: usize, seed: u64) -> Vec<Action> {
        let mut rng = Pcg32::new(seed, 0x7716 + p as u64);
        let mut out = Vec::new();
        let mut next_barrier_id: u32 = 0;
        for (k, ph) in self.phases.iter().enumerate() {
            let mut prng = rng.split(k as u64);
            let lines_total = ph.pages * LINES_PER_PAGE;
            // Zipf CDF over page ranks (skew 0 degenerates to uniform
            // pages, still with uniform line choice within the page).
            let cdf = match ph.pattern {
                Pattern::Zipf { skew } => zipf_cdf(ph.pages, skew),
                _ => Vec::new(),
            };
            let (l0, l1) = {
                let (a, b) = block_partition(lines_total, nprocs, p);
                // More processors than lines: share the whole range.
                if a == b {
                    (0, lines_total)
                } else {
                    (a, b)
                }
            };
            let span = l1 - l0;
            let mut offset: u64 = 0;
            // Barrier boundaries are a pure function of the phase
            // dials, so every processor emits the same ids at the
            // same access counts.
            let mut boundary = 1u64;
            for i in 0..ph.accesses {
                let line = match ph.pattern {
                    Pattern::Sequential { stride } => {
                        let l = l0 + offset;
                        offset = (offset + stride) % span;
                        l
                    }
                    Pattern::Uniform => prng.gen_range(0, lines_total),
                    Pattern::Zipf { .. } => {
                        let page = zipf_sample(&mut prng, &cdf);
                        page * LINES_PER_PAGE + prng.gen_range(0, LINES_PER_PAGE)
                    }
                };
                out.push(if prng.gen_bool(ph.write_frac) {
                    Action::Write(line)
                } else {
                    Action::Read(line)
                });
                if ph.compute > 0 {
                    out.push(Action::Compute(ph.compute));
                }
                if ph.burst_len > 0
                    && ph.idle > 0
                    && (i + 1).is_multiple_of(ph.burst_len as u64)
                {
                    out.push(Action::Compute(ph.idle));
                }
                while boundary <= ph.barriers as u64
                    && i + 1 == ph.accesses * boundary / ph.barriers as u64
                {
                    out.push(Action::Barrier(next_barrier_id + boundary as u32 - 1));
                    boundary += 1;
                }
            }
            next_barrier_id += ph.barriers;
        }
        out
    }

    /// Parse a scenario spec string: phases separated by `;`, each
    /// `pattern[,key=val...]`.
    ///
    /// Patterns: `seq[:stride]`, `uniform`, `zipf[:skew]` (default
    /// skew 0.8). Keys: `ws` (working-set pages), `acc` (accesses per
    /// processor), `wf` (write fraction), `cpa` (compute pcycles per
    /// access), `burst=LEN:IDLE` (burst length and idle pcycles),
    /// `bar` (barriers in the phase).
    ///
    /// ```
    /// use nw_workload::Scenario;
    /// let sc = Scenario::parse("zipf:0.9,ws=256,acc=10000,wf=0.4;seq:2,acc=5000").unwrap();
    /// assert_eq!(sc.phases.len(), 2);
    /// assert!(sc.validate().is_ok());
    /// ```
    pub fn parse(spec: &str) -> Result<Scenario, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err("empty scenario spec".into());
        }
        let mut phases = Vec::new();
        for (i, part) in spec.split(';').enumerate() {
            let part = part.trim();
            let mut ph = Phase::default();
            let mut tokens = part.split(',');
            let head = tokens.next().unwrap_or("").trim();
            ph.pattern = match head.split_once(':') {
                Some(("seq", s)) => Pattern::Sequential {
                    stride: s
                        .parse()
                        .map_err(|_| format!("phase {i}: bad stride '{s}'"))?,
                },
                Some(("zipf", s)) => Pattern::Zipf {
                    skew: s
                        .parse()
                        .map_err(|_| format!("phase {i}: bad zipf skew '{s}'"))?,
                },
                None if head == "seq" => Pattern::Sequential { stride: 1 },
                None if head == "uniform" => Pattern::Uniform,
                None if head == "zipf" => Pattern::Zipf { skew: 0.8 },
                _ => {
                    return Err(format!(
                        "phase {i}: unknown pattern '{head}' \
                         (want seq[:stride], uniform, or zipf[:skew])"
                    ))
                }
            };
            for tok in tokens {
                let tok = tok.trim();
                let (key, val) = tok
                    .split_once('=')
                    .ok_or_else(|| format!("phase {i}: expected key=value, got '{tok}'"))?;
                let bad = |what: &str| format!("phase {i}: bad {what} '{val}'");
                match key {
                    "ws" => ph.pages = val.parse().map_err(|_| bad("working set"))?,
                    "acc" => ph.accesses = val.parse().map_err(|_| bad("access count"))?,
                    "wf" => ph.write_frac = val.parse().map_err(|_| bad("write fraction"))?,
                    "cpa" => ph.compute = val.parse().map_err(|_| bad("compute density"))?,
                    "bar" => ph.barriers = val.parse().map_err(|_| bad("barrier count"))?,
                    "burst" => {
                        let (len, idle) = val
                            .split_once(':')
                            .ok_or_else(|| bad("burst (want LEN:IDLE)"))?;
                        ph.burst_len = len.parse().map_err(|_| bad("burst length"))?;
                        ph.idle = idle.parse().map_err(|_| bad("burst idle"))?;
                    }
                    other => {
                        return Err(format!(
                            "phase {i}: unknown key '{other}' \
                             (want ws, acc, wf, cpa, burst, bar)"
                        ))
                    }
                }
            }
            phases.push(ph);
        }
        Ok(Scenario {
            name: spec.to_string(),
            phases,
        })
    }
}

/// Cumulative Zipf weights over `pages` ranks with exponent `skew`.
fn zipf_cdf(pages: u64, skew: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(pages as usize);
    let mut acc = 0.0;
    for r in 0..pages {
        acc += 1.0 / ((r + 1) as f64).powf(skew);
        cdf.push(acc);
    }
    let total = acc;
    for v in cdf.iter_mut() {
        *v /= total;
    }
    cdf
}

/// Sample a page rank from a precomputed CDF.
fn zipf_sample(rng: &mut Pcg32, cdf: &[f64]) -> u64 {
    let u = rng.gen_f64();
    cdf.partition_point(|&c| c <= u) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn count_kinds(stream: &[Action]) -> (u64, u64, u64, Vec<u32>) {
        let (mut r, mut w, mut c) = (0, 0, 0);
        let mut barriers = Vec::new();
        for a in stream {
            match a {
                Action::Read(_) => r += 1,
                Action::Write(_) => w += 1,
                Action::Compute(_) => c += 1,
                Action::Barrier(id) => barriers.push(*id),
            }
        }
        (r, w, c, barriers)
    }

    #[test]
    fn deterministic_per_seed_and_sensitive_to_it() {
        let sc = Scenario::parse("uniform,ws=32,acc=400,wf=0.5").unwrap();
        assert_eq!(sc.to_trace(4, 9), sc.to_trace(4, 9));
        assert_ne!(sc.to_trace(4, 9), sc.to_trace(4, 10));
    }

    #[test]
    fn barriers_agree_across_procs_and_phases() {
        let sc = Scenario::parse("zipf:1.1,ws=64,acc=300,bar=3;seq,ws=64,acc=100,bar=2").unwrap();
        let t = sc.to_trace(4, 5);
        assert!(t.validate().is_ok());
        let seqs: Vec<Vec<u32>> = t.procs.iter().map(|s| count_kinds(s).3).collect();
        assert_eq!(seqs[0], vec![0, 1, 2, 3, 4]);
        for s in &seqs[1..] {
            assert_eq!(s, &seqs[0]);
        }
    }

    #[test]
    fn write_fraction_is_respected() {
        let sc = Scenario::parse("uniform,ws=64,acc=20000,wf=0.25,cpa=0").unwrap();
        let t = sc.to_trace(1, 3);
        let (r, w, _, _) = count_kinds(&t.procs[0]);
        let frac = w as f64 / (r + w) as f64;
        assert!((frac - 0.25).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn sequential_sweeps_the_partition() {
        let sc = Scenario::parse("seq,ws=4,acc=64,wf=0,cpa=0").unwrap();
        let t = sc.to_trace(2, 0);
        // Proc 0 owns lines [0, 128); a dense sweep of 64 accesses
        // touches 0..64 in order.
        let lines: Vec<u64> = t.procs[0]
            .iter()
            .filter_map(|a| match a {
                Action::Read(l) => Some(*l),
                _ => None,
            })
            .collect();
        assert_eq!(lines, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn zipf_concentrates_on_hot_pages() {
        let pages = 200u64;
        let sc_hot = Scenario::parse(&format!("zipf:1.2,ws={pages},acc=30000,cpa=0")).unwrap();
        let sc_flat = Scenario::parse(&format!("uniform,ws={pages},acc=30000,cpa=0")).unwrap();
        let share = |t: &Trace| {
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for a in &t.procs[0] {
                if let Action::Read(l) | Action::Write(l) = a {
                    *counts.entry(l / LINES_PER_PAGE).or_default() += 1;
                }
            }
            let total: u64 = counts.values().sum();
            let hot: u64 = (0..pages / 10).map(|p| counts.get(&p).copied().unwrap_or(0)).sum();
            hot as f64 / total as f64
        };
        let hot = share(&sc_hot.to_trace(1, 7));
        let flat = share(&sc_flat.to_trace(1, 7));
        assert!(hot > 0.5, "zipf 1.2 top-10% share only {hot:.2}");
        assert!(flat < 0.2, "uniform top-10% share {flat:.2}");
    }

    #[test]
    fn burst_inserts_idle_gaps() {
        let sc = Scenario::parse("seq,ws=4,acc=100,wf=0,cpa=0,burst=10:5000").unwrap();
        let t = sc.to_trace(1, 0);
        let idles = t.procs[0]
            .iter()
            .filter(|a| matches!(a, Action::Compute(5000)))
            .count();
        assert_eq!(idles, 10);
    }

    #[test]
    fn validation_rejects_bad_dials() {
        for bad in [
            "seq,ws=0",
            "seq,acc=0",
            "uniform,wf=1.5",
            "uniform,wf=-0.1",
            "zipf:-1",
            "seq:0",
            "seq,bar=0",
            "seq,burst=0:100",
        ] {
            let sc = Scenario::parse(bad).unwrap();
            assert!(sc.validate().is_err(), "spec '{bad}' validated");
        }
        assert!(Scenario { name: "x".into(), phases: vec![] }.validate().is_err());
        assert!(Scenario::parse("zipf:0.8,ws=16,acc=100").unwrap().validate().is_ok());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "lru,ws=4",
            "seq,ws",
            "seq,ws=abc",
            "seq,wut=4",
            "zipf:x",
            "seq,burst=5",
        ] {
            assert!(Scenario::parse(bad).is_err(), "spec '{bad}' parsed");
        }
    }

    #[test]
    fn footprint_is_the_largest_phase() {
        let sc = Scenario::parse("seq,ws=8;uniform,ws=32;zipf,ws=16").unwrap();
        assert_eq!(sc.data_bytes(), 32 * PAGE_BYTES);
        let t = sc.to_trace(2, 1);
        assert_eq!(t.data_bytes, 32 * PAGE_BYTES);
        assert!(t.validate().is_ok());
    }
}
