//! The `nwtrace-v1` trace format: capture, encode, decode, replay.
//!
//! A [`Trace`] is the materialized form of a workload — one ordered
//! record stream per processor, each record a plain
//! [`nw_apps::Action`] (compute burst, cache-line read/write, or
//! barrier). Two interchangeable encodings exist, both implemented
//! here with no external dependencies:
//!
//! * **text** — a line-oriented format (`nwtrace-v1` header, one
//!   record per line) that diffs well and can be written by hand;
//! * **binary** — a compact length-prefixed format (`NWTR` magic,
//!   LEB128 varints) roughly 6–10x smaller than the text form.
//!
//! [`Trace::decode`] sniffs the encoding from the first bytes, so
//! callers never need to know which one a file uses. The schema is
//! **frozen** (like `nwcache-bench-v1` / `nwcache-sweep-v1`): traces
//! recorded today must decode forever; any format evolution bumps the
//! version tag.

use nw_apps::{Action, AppBuild};
use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

/// Magic prefix of the binary encoding.
const BIN_MAGIC: &[u8; 4] = b"NWTR";
/// Version byte of the binary encoding / tag of the text encoding.
const VERSION: u8 = 1;
/// Text header tag.
const TEXT_MAGIC: &str = "nwtrace-v1";

/// Record tags of the binary encoding (frozen).
const TAG_COMPUTE: u8 = 0;
const TAG_READ: u8 = 1;
const TAG_WRITE: u8 = 2;
const TAG_BARRIER: u8 = 3;

/// A materialized workload: per-processor ordered action records plus
/// the metadata the simulator needs to address them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Workload name (an app name like `gauss`, or a scenario spec).
    pub name: String,
    /// Shared data footprint in bytes (pages the VM system manages).
    pub data_bytes: u64,
    /// One ordered record stream per processor.
    pub procs: Vec<Vec<Action>>,
}

/// Per-kind record counts of a trace (for `describe`-style output).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Read records.
    pub reads: u64,
    /// Write records.
    pub writes: u64,
    /// Compute records.
    pub computes: u64,
    /// Barrier records per processor (all processors agree).
    pub barriers: u64,
    /// Total records across all processors.
    pub records: u64,
}

impl Trace {
    /// Capture a built application's full action stream into a trace.
    /// Streams are drained to completion; the trace replays to the
    /// exact same action sequence the app itself would have produced.
    pub fn capture(build: AppBuild) -> Trace {
        let (name, data_bytes, procs) = build.into_actions();
        Trace {
            name: name.to_string(),
            data_bytes,
            procs,
        }
    }

    /// Present the trace as a normal application: the simulator (and
    /// everything layered on it — sweeps, fault plans, observability)
    /// cannot tell a replayed trace from the original app.
    pub fn into_build(self) -> AppBuild {
        AppBuild::from_actions(intern(&self.name), self.data_bytes, self.procs)
    }

    /// Structural validation: a decodable trace can still be
    /// unreplayable (empty, out-of-footprint lines, disagreeing
    /// barrier sequences). Run this before handing a trace to the
    /// simulator.
    pub fn validate(&self) -> Result<(), String> {
        if self.procs.is_empty() {
            return Err("trace has no processor streams".into());
        }
        if self.data_bytes == 0 {
            return Err("trace has a zero-byte data footprint".into());
        }
        let max_line = self.data_bytes.div_ceil(nw_apps::LINE_BYTES);
        let mut barrier_seqs: Vec<Vec<u32>> = Vec::with_capacity(self.procs.len());
        for (p, stream) in self.procs.iter().enumerate() {
            let mut barriers = Vec::new();
            for a in stream {
                match *a {
                    Action::Read(l) | Action::Write(l) => {
                        if l >= max_line {
                            return Err(format!(
                                "proc {p}: line {l} outside the {max_line}-line footprint"
                            ));
                        }
                    }
                    Action::Barrier(id) => barriers.push(id),
                    Action::Compute(_) => {}
                }
            }
            if barriers.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("proc {p}: barrier ids not strictly increasing"));
            }
            barrier_seqs.push(barriers);
        }
        for (p, seq) in barrier_seqs.iter().enumerate().skip(1) {
            if seq != &barrier_seqs[0] {
                return Err(format!(
                    "proc {p} disagrees with proc 0 on the barrier sequence \
                     ({} vs {} barriers)",
                    seq.len(),
                    barrier_seqs[0].len()
                ));
            }
        }
        Ok(())
    }

    /// Per-kind record counts.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        for stream in &self.procs {
            for a in stream {
                match a {
                    Action::Read(_) => s.reads += 1,
                    Action::Write(_) => s.writes += 1,
                    Action::Compute(_) => s.computes += 1,
                    Action::Barrier(_) => {}
                }
                s.records += 1;
            }
        }
        s.barriers = self
            .procs
            .first()
            .map(|p| {
                p.iter()
                    .filter(|a| matches!(a, Action::Barrier(_)))
                    .count() as u64
            })
            .unwrap_or(0);
        s
    }

    // ---- text encoding -------------------------------------------------

    /// Encode as the line-oriented text form. Newlines in the name are
    /// replaced with spaces so the header stays one line.
    pub fn encode_text(&self) -> String {
        let mut out = String::with_capacity(64 + self.stats().records as usize * 8);
        out.push_str(TEXT_MAGIC);
        out.push('\n');
        out.push_str("name ");
        out.push_str(&self.name.replace(['\n', '\r'], " "));
        out.push('\n');
        out.push_str(&format!("data_bytes {}\n", self.data_bytes));
        out.push_str(&format!("procs {}\n", self.procs.len()));
        for (p, stream) in self.procs.iter().enumerate() {
            out.push_str(&format!("proc {p} {}\n", stream.len()));
            for a in stream {
                match *a {
                    Action::Compute(c) => out.push_str(&format!("c {c}\n")),
                    Action::Read(l) => out.push_str(&format!("r {l}\n")),
                    Action::Write(l) => out.push_str(&format!("w {l}\n")),
                    Action::Barrier(id) => out.push_str(&format!("b {id}\n")),
                }
            }
        }
        out
    }

    fn decode_text(src: &str) -> Result<Trace, String> {
        let mut lines = src.lines().enumerate();
        let mut next = |what: &str| -> Result<(usize, &str), String> {
            lines
                .next()
                .map(|(n, l)| (n + 1, l))
                .ok_or_else(|| format!("unexpected end of trace, wanted {what}"))
        };
        let (_, magic) = next("header")?;
        if magic.trim() != TEXT_MAGIC {
            return Err(format!("not an {TEXT_MAGIC} file (header '{magic}')"));
        }
        let (n, name_line) = next("name")?;
        let name = name_line
            .strip_prefix("name ")
            .ok_or_else(|| format!("line {n}: expected 'name <...>'"))?
            .to_string();
        let (n, db_line) = next("data_bytes")?;
        let data_bytes: u64 = db_line
            .strip_prefix("data_bytes ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| format!("line {n}: expected 'data_bytes <u64>'"))?;
        let (n, procs_line) = next("procs")?;
        let nprocs: usize = procs_line
            .strip_prefix("procs ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| format!("line {n}: expected 'procs <count>'"))?;
        let mut procs = Vec::with_capacity(nprocs.min(1 << 16));
        for p in 0..nprocs {
            let (n, hdr) = next("proc header")?;
            let rest = hdr
                .strip_prefix("proc ")
                .ok_or_else(|| format!("line {n}: expected 'proc {p} <count>'"))?;
            let mut it = rest.split_whitespace();
            let idx: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("line {n}: bad proc index"))?;
            if idx != p {
                return Err(format!("line {n}: proc {idx} out of order (expected {p})"));
            }
            let count: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("line {n}: bad record count"))?;
            let mut stream = Vec::with_capacity(count.min(1 << 24));
            for _ in 0..count {
                let (n, rec) = next("record")?;
                let (tag, val) = rec
                    .split_once(' ')
                    .ok_or_else(|| format!("line {n}: malformed record '{rec}'"))?;
                let v: u64 = val
                    .trim()
                    .parse()
                    .map_err(|_| format!("line {n}: bad operand '{val}'"))?;
                let to_u32 = |v: u64| -> Result<u32, String> {
                    u32::try_from(v).map_err(|_| format!("line {n}: operand {v} exceeds u32"))
                };
                stream.push(match tag {
                    "c" => Action::Compute(to_u32(v)?),
                    "r" => Action::Read(v),
                    "w" => Action::Write(v),
                    "b" => Action::Barrier(to_u32(v)?),
                    other => return Err(format!("line {n}: unknown record tag '{other}'")),
                });
            }
            procs.push(stream);
        }
        Ok(Trace {
            name,
            data_bytes,
            procs,
        })
    }

    // ---- binary encoding -----------------------------------------------

    /// Encode as the compact length-prefixed binary form.
    pub fn encode_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.stats().records as usize * 3);
        out.extend_from_slice(BIN_MAGIC);
        out.push(VERSION);
        put_varint(&mut out, self.name.len() as u64);
        out.extend_from_slice(self.name.as_bytes());
        put_varint(&mut out, self.data_bytes);
        put_varint(&mut out, self.procs.len() as u64);
        for stream in &self.procs {
            put_varint(&mut out, stream.len() as u64);
            for a in stream {
                match *a {
                    Action::Compute(c) => {
                        out.push(TAG_COMPUTE);
                        put_varint(&mut out, c as u64);
                    }
                    Action::Read(l) => {
                        out.push(TAG_READ);
                        put_varint(&mut out, l);
                    }
                    Action::Write(l) => {
                        out.push(TAG_WRITE);
                        put_varint(&mut out, l);
                    }
                    Action::Barrier(id) => {
                        out.push(TAG_BARRIER);
                        put_varint(&mut out, id as u64);
                    }
                }
            }
        }
        out
    }

    fn decode_binary(src: &[u8]) -> Result<Trace, String> {
        let mut r = Reader { buf: src, pos: 0 };
        let magic = r.take(4)?;
        if magic != BIN_MAGIC {
            return Err("not an NWTR binary trace (bad magic)".into());
        }
        let version = r.take(1)?[0];
        if version != VERSION {
            return Err(format!("unsupported nwtrace binary version {version}"));
        }
        let name_len = r.varint()? as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| "trace name is not valid UTF-8".to_string())?;
        let data_bytes = r.varint()?;
        let nprocs = r.varint()? as usize;
        let mut procs = Vec::with_capacity(nprocs.min(1 << 16));
        for p in 0..nprocs {
            let count = r.varint()? as usize;
            let mut stream = Vec::with_capacity(count.min(1 << 24));
            for i in 0..count {
                let tag = r.take(1)?[0];
                let v = r.varint()?;
                let to_u32 = |v: u64| -> Result<u32, String> {
                    u32::try_from(v)
                        .map_err(|_| format!("proc {p} record {i}: operand {v} exceeds u32"))
                };
                stream.push(match tag {
                    TAG_COMPUTE => Action::Compute(to_u32(v)?),
                    TAG_READ => Action::Read(v),
                    TAG_WRITE => Action::Write(v),
                    TAG_BARRIER => Action::Barrier(to_u32(v)?),
                    other => {
                        return Err(format!("proc {p} record {i}: unknown tag byte {other}"))
                    }
                });
            }
            procs.push(stream);
        }
        if r.pos != src.len() {
            return Err(format!("{} trailing bytes after the trace", src.len() - r.pos));
        }
        Ok(Trace {
            name,
            data_bytes,
            procs,
        })
    }

    /// Decode either encoding, sniffed from the leading bytes.
    pub fn decode(src: &[u8]) -> Result<Trace, String> {
        if src.starts_with(BIN_MAGIC) {
            return Trace::decode_binary(src);
        }
        let text = std::str::from_utf8(src)
            .map_err(|_| "trace is neither NWTR binary nor UTF-8 text".to_string())?;
        Trace::decode_text(text)
    }
}

/// Intern a workload name so replayed builds can carry the `'static`
/// name `AppBuild` requires. Names are deduplicated, so replaying the
/// same trace (or app) any number of times leaks its name only once.
fn intern(s: &str) -> &'static str {
    static NAMES: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = NAMES.get_or_init(|| Mutex::new(HashSet::new())).lock().unwrap();
    if let Some(&known) = set.get(s) {
        return known;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// LEB128 unsigned varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "truncated trace: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.take(1)?[0];
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(format!("varint overflow at offset {}", self.pos - 1));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            name: "sample".into(),
            data_bytes: 8192,
            procs: vec![
                vec![
                    Action::Read(0),
                    Action::Compute(40),
                    Action::Write(127),
                    Action::Barrier(0),
                    Action::Read(64),
                    Action::Barrier(1),
                ],
                vec![
                    Action::Write(65),
                    Action::Compute(u32::MAX),
                    Action::Barrier(0),
                    Action::Barrier(1),
                ],
            ],
        }
    }

    #[test]
    fn text_round_trips() {
        let t = sample();
        let enc = t.encode_text();
        assert!(enc.starts_with("nwtrace-v1\n"));
        assert_eq!(Trace::decode(enc.as_bytes()).unwrap(), t);
    }

    #[test]
    fn binary_round_trips() {
        let t = sample();
        let enc = t.encode_binary();
        assert!(enc.starts_with(b"NWTR"));
        assert_eq!(Trace::decode(&enc).unwrap(), t);
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let t = sample();
        assert!(t.encode_binary().len() < t.encode_text().len());
    }

    #[test]
    fn validate_accepts_sample_and_catches_corruption() {
        let t = sample();
        assert!(t.validate().is_ok());

        let mut bad = t.clone();
        bad.procs[0][0] = Action::Read(1 << 40); // outside footprint
        assert!(bad.validate().unwrap_err().contains("outside"));

        let mut bad = t.clone();
        bad.procs[1].retain(|a| !matches!(a, Action::Barrier(1)));
        assert!(bad.validate().unwrap_err().contains("barrier"));

        let mut bad = t.clone();
        bad.procs[0][3] = Action::Barrier(2);
        assert!(bad.validate().is_err()); // 2 then 1 not increasing... across procs

        let empty = Trace {
            name: "x".into(),
            data_bytes: 0,
            procs: vec![],
        };
        assert!(empty.validate().is_err());
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert!(Trace::decode(b"hello world").is_err());
        assert!(Trace::decode(&[0xff, 0xfe, 0x00]).is_err());
        let enc = sample().encode_binary();
        assert!(Trace::decode(&enc[..enc.len() - 2]).is_err());
        let mut trailing = enc.clone();
        trailing.push(0);
        assert!(Trace::decode(&trailing).is_err());
        let text = sample().encode_text();
        let cut: String = text.lines().take(7).collect::<Vec<_>>().join("\n");
        assert!(Trace::decode(cut.as_bytes()).is_err());
    }

    #[test]
    fn capture_then_replay_preserves_the_action_stream() {
        let build = nw_apps::build(nw_apps::AppId::Gauss, 4, 0.05, 7);
        let trace = Trace::capture(build);
        assert_eq!(trace.name, "gauss");
        assert!(trace.validate().is_ok());
        let direct = nw_apps::build(nw_apps::AppId::Gauss, 4, 0.05, 7);
        let (_, db, actions) = direct.into_actions();
        assert_eq!(trace.data_bytes, db);
        assert_eq!(trace.procs, actions);

        // And the replayed build streams the same actions.
        let replay = trace.clone().into_build();
        assert_eq!(replay.name, "gauss");
        let (_, _, replayed) = replay.into_actions();
        assert_eq!(replayed, trace.procs);
    }

    #[test]
    fn varints_cover_the_range() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader { buf: &buf, pos: 0 };
            assert_eq!(r.varint().unwrap(), v);
            assert_eq!(r.pos, buf.len());
        }
    }

    #[test]
    fn stats_count_records() {
        let s = sample().stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 2);
        assert_eq!(s.computes, 2);
        assert_eq!(s.barriers, 2);
        assert_eq!(s.records, 10);
    }
}
