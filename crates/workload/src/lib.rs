//! # nw-workload — workloads as data
//!
//! The paper evaluates NWCache on the seven fixed kernels of Table 2
//! (plus the dial-controlled `synth` app). This crate opens the
//! workload space: access streams become *data* that can be described,
//! generated, recorded, and replayed, instead of code that must be
//! written per application. Three pillars:
//!
//! * **[`Scenario`]** — a stochastic scenario generator: per-node
//!   phased access programs with Zipf / uniform / sequential
//!   page-popularity mixes, a configurable read/write ratio, working-
//!   set size, compute density, burst/idle arrival phases, and barrier
//!   structure. Generation is seeded from the in-tree
//!   [`nw_sim::Pcg32`], so a scenario is deterministic and sweepable
//!   like any other configuration axis.
//! * **[`Trace`]** — the `nwtrace-v1` format: a versioned, compact,
//!   per-processor ordered record stream of read / write / compute /
//!   barrier actions with line addressing (a line index encodes
//!   `page * 64 + line-in-page`), with text and length-prefixed binary
//!   encodings implemented in-tree (no external deps). A recorder
//!   captures any existing app through the [`nw_apps::AppBuild`] /
//!   [`nw_apps::Action`] layer.
//! * **replay** — [`Trace::into_build`] presents a recorded or
//!   generated trace as a normal app to the simulator, so traces flow
//!   through sweeps, fault plans, observability tracing, and the bench
//!   harness unchanged.
//!
//! ```
//! use nw_workload::{Scenario, Trace};
//!
//! // Parse a two-phase scenario: a zipf-skewed read-mostly phase,
//! // then a sequential write-heavy flush phase.
//! let sc = Scenario::parse("zipf:0.9,ws=64,acc=500,wf=0.1;seq,ws=64,acc=200,wf=0.9").unwrap();
//! sc.validate().unwrap();
//!
//! // Materialize it for 4 processors, round-trip through both
//! // encodings, and get back a bit-identical action stream.
//! let trace = sc.to_trace(4, 42);
//! let text = trace.encode_text();
//! let bin = trace.encode_binary();
//! assert_eq!(Trace::decode(text.as_bytes()).unwrap(), trace);
//! assert_eq!(Trace::decode(&bin).unwrap(), trace);
//! let app = trace.into_build();
//! assert_eq!(app.streams.len(), 4);
//! ```

pub mod scenario;
pub mod trace;

pub use scenario::{Pattern, Phase, Scenario};
pub use trace::Trace;
