//! Victim caching in action: the optical ring serves page faults for
//! recently swapped-out pages (the paper's Table 7 effect).
//!
//! Runs Gauss — the application with the strongest sharing and the
//! highest NWCache hit rate in the paper — and prints where each
//! class of fault was served from and at what latency, illustrating
//! why re-reading a victim from the ring (~ one ring round-trip) beats
//! a disk-controller-cache read across the mesh and crushes a
//! mechanical disk read.
//!
//! ```text
//! cargo run --release -p nw-examples --bin victim_caching [scale]
//! ```

use nw_apps::AppId;
use nwcache::{run_app, MachineConfig, MachineKind, PrefetchMode};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    println!("Victim caching demo (gauss, scale {scale})\n");
    for prefetch in [PrefetchMode::Naive, PrefetchMode::Optimal] {
        let cfg = MachineConfig::scaled_paper(MachineKind::NwCache, prefetch, scale);
        let m = run_app(&cfg, AppId::Gauss);
        println!("--- {prefetch:?} prefetching ---");
        println!(
            "page faults: {:>8}   served from ring: {:>8} ({:.1}%)",
            m.page_faults,
            m.ring_hits,
            m.ring_hit_rate()
        );
        println!(
            "fault latency   ring hit: {:>10.0} pcycles ({} faults)",
            m.fault_latency_ring.mean(),
            m.fault_latency_ring.count()
        );
        println!(
            "fault latency  disk hit : {:>10.0} pcycles ({} faults)",
            m.fault_latency_disk_hit.mean(),
            m.fault_latency_disk_hit.count()
        );
        println!(
            "fault latency  disk miss: {:>10.0} pcycles ({} faults)",
            m.fault_latency_disk_miss.mean(),
            m.fault_latency_disk_miss.count()
        );
        println!(
            "peak pages stored on the ring: {} (capacity {})\n",
            m.ring_peak_pages,
            cfg.ring_channels * cfg.ring_slots_per_channel
        );
    }
    println!(
        "The ring hit latency is roughly one ring round-trip (52 us = \n\
         10400 pcycles) plus local bus transfers — no mesh crossing, no\n\
         disk involvement. That is the victim-caching benefit."
    );
}
