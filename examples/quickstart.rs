//! Quickstart: run one out-of-core application on the standard and the
//! NWCache-equipped multiprocessor, and compare what the paper's
//! abstract promises — dramatically faster page swap-outs and an
//! overall execution-time win.
//!
//! ```text
//! cargo run --release -p nw-examples --bin quickstart [app] [scale]
//! ```
//!
//! `app` defaults to `sor`, `scale` to `0.25` (a quarter of the
//! paper's input sizes, with the machine shrunk to match).

use nw_apps::AppId;
use nwcache::{run_app, MachineConfig, MachineKind, PrefetchMode};

fn main() {
    let app = std::env::args()
        .nth(1)
        .and_then(|s| AppId::from_name(&s))
        .unwrap_or(AppId::Sor);
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    println!("NWCache quickstart: app={} scale={scale}\n", app.name());
    for prefetch in [PrefetchMode::Optimal, PrefetchMode::Naive] {
        let std_cfg = MachineConfig::scaled_paper(MachineKind::Standard, prefetch, scale);
        let nwc_cfg = MachineConfig::scaled_paper(MachineKind::NwCache, prefetch, scale);
        let std_run = run_app(&std_cfg, app);
        let nwc_run = run_app(&nwc_cfg, app);

        println!("--- {prefetch:?} prefetching ---");
        println!(
            "standard : exec {:>12} pcycles | avg swap-out {:>12.0} pcycles | faults {}",
            std_run.exec_time,
            std_run.swap_out_time.mean(),
            std_run.page_faults
        );
        println!(
            "nwcache  : exec {:>12} pcycles | avg swap-out {:>12.0} pcycles | faults {}",
            nwc_run.exec_time,
            nwc_run.swap_out_time.mean(),
            nwc_run.page_faults
        );
        println!(
            "swap-out speedup: {:>8.1}x | victim-cache hit rate: {:>5.1}% | overall improvement: {:>5.1}%\n",
            std_run.swap_out_time.mean() / nwc_run.swap_out_time.mean().max(1.0),
            nwc_run.ring_hit_rate(),
            nwc_run.improvement_over(&std_run)
        );
    }
}
