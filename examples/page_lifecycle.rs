//! Follow one page through the NWCache protocol: fault from disk,
//! residency, eviction, the optical ring, the interface drain (or a
//! victim read), and the final ACKs — the complete §3.2 lifecycle,
//! printed as a timeline.
//!
//! ```text
//! cargo run --release -p nw-examples --bin page_lifecycle [vpn] [scale]
//! ```

use nw_apps::AppId;
use nwcache::trace::TraceKind;
use nwcache::{Machine, MachineConfig, MachineKind, PrefetchMode};

fn main() {
    let vpn: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);

    let cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, scale);
    let mut machine = Machine::new(cfg, AppId::Sor);
    assert!(
        vpn < machine.npages(),
        "vpn {vpn} beyond footprint ({} pages)",
        machine.npages()
    );
    machine.trace_page(vpn);
    machine.run();

    println!("Lifecycle of page {vpn} (sor, NWCache machine, naive prefetching)\n");
    println!("{:>14}  event", "pcycles");
    let mut last = 0u64;
    for r in machine.trace_records() {
        let delta = r.at - last;
        last = r.at;
        let what = match r.kind {
            TraceKind::FaultToDisk { proc } => {
                format!("processor {proc} faults; request sent to the disk")
            }
            TraceKind::FaultToRing { proc, channel } => format!(
                "processor {proc} faults; Ring bit set -> snooping channel {channel}"
            ),
            TraceKind::Arrived { node } => format!("page data arrives in node {node}'s memory"),
            TraceKind::Evicted { node, dirty } => format!(
                "node {node} evicts the page ({})",
                if dirty { "dirty: swap-out begins" } else { "clean: frame freed" }
            ),
            TraceKind::OnRing { channel } => {
                format!("page fully serialized onto cache channel {channel}")
            }
            TraceKind::Drained { disk } => {
                format!("interface copied the page into disk {disk}'s cache")
            }
            TraceKind::RingAcked => "origin ACKed: ring slot freed, Ring bit cleared".to_string(),
            TraceKind::SwapAcked => "controller ACKed the swap-out".to_string(),
            TraceKind::SwapNacked => "controller NACKed: waiting for an OK".to_string(),
            TraceKind::Flushed => "page written to the platters".to_string(),
        };
        println!("{:>14}  {what}   (+{delta})", r.at);
    }
    if machine.trace_records().is_empty() {
        println!("(the page was never touched at this scale — try another vpn)");
    }
}
