//! Out-of-core radix sort, end to end: the workload the paper's
//! introduction motivates — an application whose data does not fit in
//! memory, programmed against plain virtual memory (`mmap`-style)
//! instead of explicit I/O, with the underlying system (here: the
//! NWCache) responsible for making paging fast.
//!
//! Prints a per-phase trace of the radix sort's interaction with the
//! VM system on both machines.
//!
//! ```text
//! cargo run --release -p nw-examples --bin out_of_core_sort [scale]
//! ```

use nw_apps::AppId;
use nwcache::{run_app, MachineConfig, MachineKind, PrefetchMode};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    println!("Out-of-core radix sort (320K keys at scale {scale}, radix 1024)\n");
    for kind in [MachineKind::Standard, MachineKind::NwCache] {
        let cfg = MachineConfig::scaled_paper(kind, PrefetchMode::Naive, scale);
        let frames = cfg.frames_per_node() * cfg.nodes;
        let m = run_app(&cfg, AppId::Radix);
        println!("--- {kind:?} machine ---");
        println!(
            "memory: {} frames total; application faulted {} times, swapped {} pages",
            frames, m.page_faults, m.swap_outs
        );
        println!(
            "execution: {} pcycles ({:.1} simulated ms)",
            m.exec_time,
            m.exec_time as f64 * 5.0 / 1e6
        );
        println!(
            "average swap-out: {:.0} pcycles | NACKed swap-outs: {}",
            m.swap_out_time.mean(),
            m.swap_nacks
        );
        println!(
            "write combining: {:.2} pages per disk operation",
            m.write_combining.mean()
        );
        println!(
            "mesh traffic: {:.1} MB in {} messages\n",
            m.mesh_bytes as f64 / 1e6,
            m.mesh_messages
        );
    }
    println!(
        "Radix's scattered permutation writes dirty pages all over the\n\
         destination array, producing the bursty swap-out traffic the\n\
         NWCache's write staging absorbs."
    );
}
