//! Ring-capacity exploration: the paper's §3.2 storage equation says
//! the delay-line capacity scales with channels x length x rate. This
//! example sweeps the per-channel slot count and shows how swap-out
//! staging and victim caching respond — the "as optical technology
//! develops, we will see greater gains" claim from the paper's
//! discussion.
//!
//! ```text
//! cargo run --release -p nw-examples --bin ring_capacity [app] [scale]
//! ```

use nw_apps::AppId;
use nwcache::{run_app, MachineConfig, MachineKind, PrefetchMode};

fn main() {
    let app = std::env::args()
        .nth(1)
        .and_then(|s| AppId::from_name(&s))
        .unwrap_or(AppId::Gauss);
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    // The paper's physical capacity equation for reference.
    let cfg0 = nw_optical::RingConfig::paper_default();
    println!(
        "Paper ring: {} channels x {} pcycles round-trip x {:.2} B/pcycle = {} bytes of fiber storage\n",
        cfg0.channels,
        cfg0.round_trip,
        cfg0.rate.bytes_per_cycle(),
        cfg0.capacity_bytes_physical()
    );

    println!("Sweeping per-channel slots for {} at scale {scale}:", app.name());
    println!(
        "{:<8} {:>14} {:>14} {:>10} {:>12}",
        "slots", "exec (pc)", "swap mean", "hit rate", "peak pages"
    );
    let std_cfg = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Optimal, scale);
    let std_run = run_app(&std_cfg, app);
    for slots in [1usize, 2, 4, 8, 16, 32] {
        let mut cfg =
            MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Optimal, scale);
        cfg.ring_slots_per_channel = slots;
        let m = run_app(&cfg, app);
        println!(
            "{:<8} {:>14} {:>14.0} {:>9.1}% {:>12}",
            slots,
            m.exec_time,
            m.swap_out_time.mean(),
            m.ring_hit_rate(),
            m.ring_peak_pages
        );
    }
    println!(
        "\nstandard machine reference: exec {} pcycles, swap mean {:.0}",
        std_run.exec_time,
        std_run.swap_out_time.mean()
    );
}
