//! Integration test host crate for the NWCache workspace.
