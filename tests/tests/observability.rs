//! Behavior-invariance contract for the observability layer: running
//! with tracing/sampling attached must produce bit-identical
//! `RunMetrics` (and sweep rows) to running without it, on clean and
//! faulted cells, serially and fanned across workers — and the traces
//! themselves must be valid, subsystem-complete Chrome trace JSON
//! held in bounded memory.

use nw_apps::AppId;
use nwcache::config::{MachineConfig, MachineKind, PrefetchMode};
use nwcache::observe::{self, ObserveConfig};
use nwcache::sweep::run_grid;
use nwcache::{Machine, SweepReport};
use std::sync::Mutex;

const SCALE: f64 = 0.05;

/// Tests that flip the process-wide observer default must not
/// interleave; everything touching `observe::set_global` locks this.
static GLOBAL_OBSERVE_LOCK: Mutex<()> = Mutex::new(());

fn cfg(kind: MachineKind) -> MachineConfig {
    MachineConfig::scaled_paper(kind, PrefetchMode::Naive, SCALE)
}

fn faulted_cfg() -> MachineConfig {
    let mut c = cfg(MachineKind::NwCache);
    c.faults.disk_error_rate = 0.05;
    c.faults.mesh_drop_rate = 0.02;
    c
}

/// Run `cfg` twice — bare, and with an observer attached — and assert
/// full-state metric equality (every counter, histogram bucket and
/// occupancy sample, via `RunMetrics`' derived `PartialEq`).
fn assert_observation_invariant(cfg: &MachineConfig, app: AppId) {
    let bare = nwcache::run_app(cfg, app);
    let mut m = Machine::new(cfg.clone(), app);
    m.enable_observer(ObserveConfig::default());
    let observed = m.run();
    let data = m.take_observation().expect("observer was attached");
    assert_eq!(
        bare, observed,
        "metrics diverged with the observer attached ({:?}, {:?})",
        cfg.kind, app
    );
    // And the observation itself is not vacuous.
    assert!(data.recorded > 0, "observer recorded nothing");
}

#[test]
fn tracing_is_behavior_invariant_on_clean_cell() {
    assert_observation_invariant(&cfg(MachineKind::NwCache), AppId::Sor);
    assert_observation_invariant(&cfg(MachineKind::Standard), AppId::Sor);
}

#[test]
fn tracing_is_behavior_invariant_on_faulted_cell() {
    let c = faulted_cfg();
    let m = nwcache::run_app(&c, AppId::Sor);
    assert!(m.disk_media_errors > 0, "fault plan injected nothing");
    assert_observation_invariant(&c, AppId::Sor);
}

#[test]
fn tracing_is_behavior_invariant_at_odd_sample_intervals() {
    // A pathological (prime, tiny) sampling period maximizes sampler
    // activity; metrics must still not move.
    let c = cfg(MachineKind::NwCache);
    let bare = nwcache::run_app(&c, AppId::Gauss);
    let mut m = Machine::new(c, AppId::Gauss);
    m.enable_observer(ObserveConfig {
        trace_capacity: 128, // force ring-buffer wrap-around too
        sample_interval: 4_099,
    });
    let observed = m.run();
    assert_eq!(bare, observed);
    let data = m.take_observation().unwrap();
    assert!(data.dropped > 0, "tiny capacity should have wrapped");
}

#[test]
fn sweep_rows_identical_with_global_observer_serial_and_parallel() {
    let _guard = GLOBAL_OBSERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let grid = || {
        vec![
            (cfg(MachineKind::Standard), AppId::Sor),
            (cfg(MachineKind::NwCache), AppId::Sor),
            (faulted_cfg(), AppId::Sor),
        ]
    };
    observe::set_global(None);
    let bare_serial = run_grid(1, grid());
    let bare_parallel = run_grid(4, grid());
    let report_bare = SweepReport::collect(SCALE, 1, grid());
    observe::set_global(Some(ObserveConfig::default()));
    let obs_serial = run_grid(1, grid());
    let obs_parallel = run_grid(4, grid());
    let report_obs = SweepReport::collect(SCALE, 1, grid());
    observe::set_global(None);
    assert_eq!(bare_serial, obs_serial, "serial sweep moved under tracing");
    assert_eq!(bare_parallel, obs_parallel, "parallel sweep moved under tracing");
    assert_eq!(bare_serial, bare_parallel);
    // The exported sweep rows (the `nwcache-sweep-v1` payload minus
    // the wall-clock header) are bit-identical too.
    assert_eq!(report_bare.rows, report_obs.rows, "sweep JSON rows moved");
}

#[test]
fn ring_occupancy_memory_is_bounded() {
    // The occupancy series must stay O(samples), not O(events): the
    // bounded sampler downsamples instead of growing without limit.
    let c = cfg(MachineKind::NwCache);
    let m = nwcache::run_app(&c, AppId::Gauss);
    assert!(
        m.ring_occupancy.len() <= 4_096,
        "ring_occupancy grew to {} samples",
        m.ring_occupancy.len()
    );
}

#[test]
fn trace_export_is_valid_and_covers_all_subsystems() {
    let mut m = Machine::new(cfg(MachineKind::NwCache), AppId::Gauss);
    m.enable_observer(ObserveConfig::default());
    m.run();
    let data = m.take_observation().unwrap();
    let json = data.to_chrome_json();
    let stats = observe::validate_chrome_trace(&json).expect("exported trace must validate");
    assert!(stats.spans > 0 && stats.instants > 0 && stats.counters > 0);
    // Mesh, ring, disk, directory and VM all have a track; pids are
    // track groups + 1.
    for g in [
        observe::groups::MESH,
        observe::groups::RING,
        observe::groups::DISK,
        observe::groups::DIR,
        observe::groups::VM,
    ] {
        assert!(
            stats.pids.contains(&(g as u32 + 1)),
            "track group {} missing from NWCache trace",
            observe::group_name(g)
        );
    }
    // The standard machine has no ring but every other subsystem.
    let mut m = Machine::new(cfg(MachineKind::Standard), AppId::Gauss);
    m.enable_observer(ObserveConfig::default());
    m.run();
    let stats =
        observe::validate_chrome_trace(&m.take_observation().unwrap().to_chrome_json()).unwrap();
    for g in [
        observe::groups::MESH,
        observe::groups::DISK,
        observe::groups::DIR,
        observe::groups::VM,
    ] {
        assert!(
            stats.pids.contains(&(g as u32 + 1)),
            "track group {} missing from standard trace",
            observe::group_name(g)
        );
    }
    assert!(
        !stats.pids.contains(&(observe::groups::RING as u32 + 1)),
        "standard machine grew a ring track"
    );
}

#[test]
fn text_timeline_mentions_every_group() {
    let mut m = Machine::new(cfg(MachineKind::NwCache), AppId::Gauss);
    m.enable_observer(ObserveConfig::default());
    m.run();
    let text = m.take_observation().unwrap().to_text_timeline();
    for needle in ["mesh.", "ring.", "disk.", "dir.", "vm."] {
        assert!(text.contains(needle), "text timeline lacks {needle}");
    }
}
