//! Generated-topology integration suite: multi-ring fabrics, sharded
//! directories and I/O placement policies driven end-to-end, with the
//! same differential-determinism and checkpoint guarantees the paper
//! machine has. These are the invariants the `reproduce scale` study
//! and the CI scale-smoke job stand on.

use nwcache::checkpoint::{machine_from_bytes, machine_to_bytes};
use nwcache::config::{MachineConfig, MachineKind, PrefetchMode};
use nwcache::metrics::RunMetrics;
use nwcache::workload::AppSel;
use nwcache::{Machine, RunOutcome, TopoSpec};

const SCALE: f64 = 0.1;

/// A working set 1.5× the machine's total frames, so the swap path —
/// ring fabric, interface FIFOs, drain — carries real load.
fn pressured_spec(nodes: u32) -> String {
    format!("zipf:0.9,ws={},acc=60,wf=0.3", 12 * nodes as u64)
}

fn topo_cfg(spec: &str, kind: MachineKind) -> MachineConfig {
    TopoSpec::parse(spec)
        .expect("topology parses")
        .to_config(kind, PrefetchMode::Naive, SCALE)
}

fn build_machine(cfg: &MachineConfig, spec: &str) -> Machine {
    let sel = AppSel::parse(spec).expect("spec parses");
    let build = sel.build(cfg).expect("workload builds");
    Machine::try_from_build(cfg.clone(), build).expect("machine builds")
}

fn finish(m: &mut Machine) -> RunMetrics {
    match m.try_run_events(u64::MAX).expect("run completes") {
        RunOutcome::Done(metrics) => *metrics,
        RunOutcome::Paused => unreachable!("unbounded run cannot pause"),
    }
}

/// The topology ladder the determinism tests sweep: every I/O
/// placement policy, both ring-sharding modes, multi-ring fabrics
/// and sharded directories, through 256 nodes.
const TOPOS: [&str; 4] = [
    "mesh=4x2",
    "mesh=8x8,io=corners,rings=2,dirshards=2",
    "mesh=8x8,io=row:8,rings=4,shard=region,dirshards=4",
    "mesh=16x16,rings=4,dirshards=8",
];

#[test]
fn multi_ring_sharded_runs_complete_under_memory_pressure() {
    // Regression for the iface-enqueue origin bug: with rings > 1 a
    // global channel id is not a node id, and a pressured 64-node run
    // used to panic routing the drain ACK to "node" 88.
    for spec in ["mesh=8x8,rings=2,dirshards=2", "mesh=8x8,io=corners,rings=4,shard=region"] {
        let cfg = topo_cfg(spec, MachineKind::NwCache);
        let sel = AppSel::parse(&format!("workload:gen:{}", pressured_spec(cfg.nodes)))
            .expect("workload parses");
        let m = nwcache::try_run_sel(&cfg, &sel)
            .unwrap_or_else(|e| panic!("{spec}: run failed: {e}"));
        assert!(m.page_faults > 0, "{spec}: no paging, test measures nothing");
        assert!(m.swap_outs > 0, "{spec}: swap path never engaged");
        assert_eq!(m.ring_pages_lost, 0, "{spec}: pages lost without faults");
    }
}

#[test]
fn topology_sweep_is_bit_identical_across_jobs() {
    let grid = || -> Vec<(MachineConfig, AppSel)> {
        TOPOS
            .iter()
            .flat_map(|spec| {
                [MachineKind::Standard, MachineKind::NwCache].map(|kind| {
                    let cfg = topo_cfg(spec, kind);
                    let sel =
                        AppSel::parse(&format!("workload:gen:{}", pressured_spec(cfg.nodes)))
                            .expect("workload parses");
                    (cfg, sel)
                })
            })
            .collect()
    };
    let serial = nwcache::sweep::run_sel_grid(1, grid());
    let parallel = nwcache::sweep::run_sel_grid(4, grid());
    // Full-state equality: every counter, histogram bucket and time
    // series — not just the headline numbers.
    assert_eq!(serial, parallel, "jobs=4 diverged from serial");
    assert!(serial.iter().all(|r| r.is_ok()));
}

#[test]
fn topology_runs_are_bit_identical_across_sim_threads() {
    for spec in TOPOS {
        let cfg = topo_cfg(spec, MachineKind::NwCache);
        let workload = format!("workload:gen:{}", pressured_spec(cfg.nodes));
        let mut reference: Option<RunMetrics> = None;
        for threads in [1usize, 4] {
            let mut m = build_machine(&cfg, &workload);
            m.set_sim_threads(threads);
            let metrics = finish(&mut m);
            match &reference {
                None => reference = Some(metrics),
                Some(r) => assert_eq!(
                    *r, metrics,
                    "{spec}: sim-threads={threads} diverged from serial"
                ),
            }
        }
    }
}

#[test]
fn topology_checkpoint_round_trip_is_bit_identical() {
    // Multi-ring RING sections, sharded DIR sections and the topology
    // CONFIG tail all survive save/restore mid-run.
    let cfg = topo_cfg("mesh=8x8,io=corners,rings=2,shard=region,dirshards=4", MachineKind::NwCache);
    let workload = format!("workload:gen:{}", pressured_spec(cfg.nodes));
    let uninterrupted = finish(&mut build_machine(&cfg, &workload));

    let mut m = build_machine(&cfg, &workload);
    match m.try_run_events(500).expect("run ok") {
        RunOutcome::Paused => {}
        RunOutcome::Done(_) => panic!("run finished before the snapshot point"),
    }
    let bytes = machine_to_bytes(&workload, &m);
    let (_meta, mut restored) = match machine_from_bytes(&bytes) {
        Ok(pair) => pair,
        Err(e) => panic!("restore failed: {e}"),
    };
    // restore(save(m)) serializes back to the same bytes.
    assert_eq!(bytes, machine_to_bytes(&workload, &restored), "snapshot not canonical");
    assert_eq!(
        finish(&mut restored),
        uninterrupted,
        "resumed run diverged from the uninterrupted one"
    );
}

#[test]
fn scale_study_report_is_parallelism_independent() {
    // The `nwcache-scale-v1` document carries no wall-clock or
    // worker-count fields, so two exports at different job counts
    // must be byte-identical — the CI scale-smoke contract.
    let topos = ["mesh=4x2", "mesh=4x4,rings=2,dirshards=2"];
    nwcache::sweep::set_jobs(1);
    let serial = nwcache::experiments::scale_study(&topos, SCALE).expect("study runs");
    nwcache::sweep::set_jobs(4);
    let parallel = nwcache::experiments::scale_study(&topos, SCALE).expect("study runs");
    nwcache::sweep::set_jobs(0);
    assert_eq!(
        nwcache::experiments::scale_report_json(SCALE, &serial),
        nwcache::experiments::scale_report_json(SCALE, &parallel),
        "scale report differs across --jobs"
    );
    for row in &serial {
        assert!(row.result.is_ok(), "{}/{}/{} errored", row.topo, row.machine, row.mode);
    }
}
