//! Golden `RunSummary` snapshots pinning generated-workload replay
//! semantics, mirroring the PR 3 hotpath goldens.
//!
//! The workload engine's promise is that a scenario spec plus a seed
//! *is* the workload: regenerating it must land on the same machine
//! state forever. These snapshots pin the exact serialized
//! `RunSummary` of one generated cell — clean and fault-injected — so
//! a future refactor of the generator, the codecs, or the replay path
//! cannot silently shift what a spec means.
//!
//! If a FUTURE PR intentionally changes the generator or the timing
//! model, regenerate the constants with:
//!
//! ```text
//! cargo test -p nw-integration --release print_workload_golden -- --ignored --nocapture
//! ```

use nw_workload::Scenario;
use nwcache::config::{MachineConfig, MachineKind, PrefetchMode};
use nwcache::workload::{try_run_sel, AppSel};
use std::sync::Arc;

const SCALE: f64 = 0.1;

/// The pinned scenario: a Zipf-skewed read phase followed by a
/// bursty sequential write-back phase.
const SPEC: &str = "zipf:1.1,ws=128,acc=2000,wf=0.3,bar=2;seq,ws=128,acc=1000,wf=0.9,burst=50:10000";

fn sel() -> AppSel {
    AppSel::Gen(Arc::new(Scenario::parse(SPEC).expect("spec")))
}

fn clean_cell() -> MachineConfig {
    MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, SCALE)
}

fn faulted_cell() -> MachineConfig {
    // Same fault plan as the hotpath goldens, so the two suites pin
    // the same failure paths over different workload sources.
    let mut cfg = clean_cell();
    cfg.faults.disk_error_rate = 0.05;
    cfg.faults.disk_stuck_rate = 0.01;
    cfg.faults.mesh_drop_rate = 0.02;
    cfg.faults.mesh_corrupt_rate = 0.01;
    cfg.faults.ring_channel_failures = vec![(40_000_000, 1)];
    cfg
}

/// `RunSummary::to_json()` of the clean generated cell.
const GOLDEN_CLEAN: &str = include_str!("golden/clean_workload_zipf_01.json");

/// `RunSummary::to_json()` of the fault-injected generated cell.
const GOLDEN_FAULTED: &str = include_str!("golden/faulted_workload_zipf_01.json");

#[test]
fn clean_generated_cell_matches_snapshot() {
    let m = try_run_sel(&clean_cell(), &sel()).expect("clean run");
    assert_eq!(
        m.summary().to_json().trim(),
        GOLDEN_CLEAN.trim(),
        "generated-workload RunSummary drifted from the snapshot"
    );
}

#[test]
fn faulted_generated_cell_matches_snapshot() {
    let m = try_run_sel(&faulted_cell(), &sel()).expect("faulted run");
    assert_eq!(
        m.summary().to_json().trim(),
        GOLDEN_FAULTED.trim(),
        "faulted generated-workload RunSummary drifted from the snapshot"
    );
    // The snapshot is only meaningful if the faults actually fired.
    assert!(m.disk_media_errors > 0, "no media errors in golden cell");
}

/// Regenerates the snapshot constants. Ignored by default; run with
/// `--ignored --nocapture` and paste the output into the files under
/// `tests/tests/golden/`.
#[test]
#[ignore]
fn print_workload_golden() {
    let clean = try_run_sel(&clean_cell(), &sel()).expect("clean run");
    println!("=== clean_workload_zipf_01.json ===");
    println!("{}", clean.summary().to_json());
    let faulted = try_run_sel(&faulted_cell(), &sel()).expect("faulted run");
    println!("=== faulted_workload_zipf_01.json ===");
    println!("{}", faulted.summary().to_json());
}
