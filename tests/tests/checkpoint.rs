//! Checkpoint/restore integration suite: crash injection, round-trip
//! determinism, and rejection of damaged checkpoint files.
//!
//! The contract under test is the one `nwsim run --checkpoint` /
//! `nwsim resume` rely on: a machine restored from an `nwckpt-v1`
//! snapshot and run to completion produces a `RunMetrics` (and
//! therefore a `RunSummary` JSON) bit-identical to the uninterrupted
//! run — across seeds, across clean and fault-injected cells, and
//! regardless of how many worker threads the uninterrupted arm used.
//! Any bit flip, truncation, or version skew in the file must be
//! rejected with a structured `SimError`, never a panic or a silently
//! wrong machine.

use nw_apps::AppId;
use nwcache::checkpoint::{machine_from_bytes, machine_to_bytes};
use nwcache::config::{MachineConfig, MachineKind, PrefetchMode};
use nwcache::sweep::run_grid;
use nwcache::{AppSel, Machine, RunMetrics, RunOutcome, SimError};

const SCALE: f64 = 0.05;

fn clean_cfg(seed: u64) -> MachineConfig {
    let mut cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, SCALE);
    cfg.seed = seed;
    cfg
}

fn faulted_cfg(seed: u64) -> MachineConfig {
    let mut cfg = clean_cfg(seed);
    cfg.faults.disk_error_rate = 0.02;
    cfg.faults.mesh_drop_rate = 0.01;
    cfg
}

fn build_machine(cfg: &MachineConfig, spec: &str) -> Machine {
    let sel = AppSel::parse(spec).expect("spec parses");
    let build = sel.build(cfg).expect("workload builds");
    Machine::try_from_build(cfg.clone(), build).expect("machine builds")
}

fn finish(mut m: Machine) -> RunMetrics {
    match m.try_run_events(u64::MAX).expect("run completes") {
        RunOutcome::Done(metrics) => *metrics,
        RunOutcome::Paused => unreachable!("unbounded run cannot pause"),
    }
}

/// Run `spec` on `cfg`, pause after `events` dispatched events, and
/// return the snapshot taken at the pause point.
fn snapshot_at(cfg: &MachineConfig, spec: &str, events: u64) -> Vec<u8> {
    let mut m = build_machine(cfg, spec);
    match m.try_run_events(events).expect("run ok") {
        RunOutcome::Paused => {}
        RunOutcome::Done(_) => panic!("run finished before {events} events"),
    }
    machine_to_bytes(spec, &m)
}

/// The in-process equivalent of `nwsim run --checkpoint-every
/// --stop-after`: autosave a snapshot every `every` events, crash
/// (drop the machine) once `stop` events have been dispatched, and
/// return the latest autosave — the state a real resume starts from.
/// The budget is clipped so the crash lands exactly on `stop`,
/// strictly after the last autosave.
fn crash_with_autosaves(cfg: &MachineConfig, spec: &str, every: u64, stop: u64) -> Vec<u8> {
    let mut m = build_machine(cfg, spec);
    let mut latest: Option<Vec<u8>> = None;
    loop {
        let dispatched = m.events_dispatched();
        if dispatched >= stop {
            return latest.expect("crash point precedes the first autosave");
        }
        let budget = every.min(stop - dispatched);
        match m.try_run_events(budget).expect("run ok") {
            RunOutcome::Done(_) => panic!("run finished before the crash at {stop} events"),
            RunOutcome::Paused => {
                if m.events_dispatched() < stop {
                    latest = Some(machine_to_bytes(spec, &m));
                }
            }
        }
    }
}

fn restore(bytes: &[u8]) -> Machine {
    match machine_from_bytes(bytes) {
        Ok((_meta, m)) => m,
        Err(e) => panic!("restore failed: {e}"),
    }
}

#[test]
fn round_trip_is_bit_identical_across_seeds_and_fault_cells() {
    for seed in [1u64, 2, 3] {
        for (label, cfg) in [("clean", clean_cfg(seed)), ("faulted", faulted_cfg(seed))] {
            let uninterrupted = finish(build_machine(&cfg, "sor"));
            let resumed = finish(restore(&snapshot_at(&cfg, "sor", 300)));
            // Full-state equality: every counter, histogram bucket
            // and latency series — not just the headline numbers.
            assert_eq!(
                uninterrupted, resumed,
                "seed {seed} {label}: resumed run diverged"
            );
            assert_eq!(
                uninterrupted.summary().to_json(),
                resumed.summary().to_json(),
                "seed {seed} {label}: RunSummary JSON diverged"
            );
        }
    }
}

#[test]
fn snapshot_of_restored_machine_is_byte_identical() {
    // restore(save(m)) must serialize back to the same bytes — the
    // codec is canonical, so `ckpt-diff` on a faithful resume shows
    // every section as `same`.
    let cfg = faulted_cfg(7);
    let bytes = snapshot_at(&cfg, "sor", 250);
    let again = machine_to_bytes("sor", &restore(&bytes));
    assert_eq!(bytes, again);
}

#[test]
fn crash_injection_at_seeded_points_restores_identically() {
    // Kill the run at several event indices, restore from the latest
    // autosave (never the crash-point state — that was lost), and
    // check the final summary matches the uninterrupted run. The
    // crash points are chosen inside the run: SOR at this scale
    // dispatches a few hundred events total.
    for (label, cfg) in [("clean", clean_cfg(11)), ("faulted", faulted_cfg(11))] {
        let uninterrupted = finish(build_machine(&cfg, "sor"));
        for stop in [150u64, 333, 500, 750] {
            let autosave = crash_with_autosaves(&cfg, "sor", 100, stop);
            let resumed = finish(restore(&autosave));
            assert_eq!(
                uninterrupted, resumed,
                "{label}: crash at {stop} events did not restore to the same run"
            );
        }
    }
}

#[test]
fn resumed_cells_match_serial_and_parallel_sweeps() {
    // A sweep's worth of cells, each crash-resumed individually, must
    // reproduce both the serial and the multi-worker sweep results.
    let cells: Vec<(MachineConfig, AppId, &str)> = vec![
        (clean_cfg(1), AppId::Sor, "sor"),
        (faulted_cfg(1), AppId::Sor, "sor"),
        (clean_cfg(2), AppId::Gauss, "gauss"),
    ];
    let grid: Vec<(MachineConfig, AppId)> =
        cells.iter().map(|(cfg, app, _)| (cfg.clone(), *app)).collect();
    let serial = run_grid(1, grid.clone());
    let parallel = run_grid(4, grid);
    assert_eq!(serial, parallel, "parallel sweep diverged from serial");
    for (i, (cfg, _, spec)) in cells.iter().enumerate() {
        let swept = serial[i].as_ref().expect("cell completes");
        let resumed = finish(restore(&crash_with_autosaves(cfg, spec, 100, 450)));
        assert_eq!(*swept, resumed, "cell {i} ({spec}): resume diverged from sweep");
    }
}

#[test]
fn adaptive_crash_restore_with_live_speculation_matches_uninterrupted() {
    // The adaptive policy carries extra run state — per-node detector
    // windows, RNG streams, the outstanding-hint table, and
    // speculative reads queued/active/installed at the controllers
    // (checkpoint section 12 plus the controllers' spec fields). A
    // snapshot taken while hints are provably in flight must resume
    // to a bit-identical end state, clean and faulted alike.
    let spec = "workload:gen:seq,ws=256,acc=3000,wf=0.1";
    let clean = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Adaptive, 0.1);
    let mut faulted = clean.clone();
    faulted.faults.disk_error_rate = 0.05;
    faulted.faults.mesh_drop_rate = 0.02;
    for (label, cfg) in [("clean", clean), ("faulted", faulted)] {
        let uninterrupted = finish(build_machine(&cfg, spec));
        assert!(
            uninterrupted.prefetch_spec_issued > 0,
            "{label}: cell must speculate for the test to mean anything"
        );
        let mut m = build_machine(&cfg, spec);
        let bytes = loop {
            match m.try_run_events(50).expect("run ok") {
                RunOutcome::Paused => {
                    if m.spec_outstanding() > 0 {
                        break machine_to_bytes(spec, &m);
                    }
                }
                RunOutcome::Done(_) => panic!("{label}: finished before speculation went live"),
            }
        };
        let resumed = finish(restore(&bytes));
        assert_eq!(
            uninterrupted, resumed,
            "{label}: resume with live speculative requests diverged"
        );
        assert_eq!(
            uninterrupted.summary().to_json(),
            resumed.summary().to_json(),
            "{label}: RunSummary JSON diverged"
        );
    }
}

#[test]
fn adaptive_snapshot_round_trip_is_canonical() {
    // save(restore(save(m))) with live speculation must be
    // byte-identical — detector windows, RNG parts, and controller
    // spec queues all re-serialize canonically.
    let spec = "workload:gen:seq,ws=256,acc=3000,wf=0.1";
    let cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Adaptive, 0.1);
    let mut m = build_machine(&cfg, spec);
    let bytes = loop {
        match m.try_run_events(50).expect("run ok") {
            RunOutcome::Paused => {
                if m.spec_outstanding() > 0 {
                    break machine_to_bytes(spec, &m);
                }
            }
            RunOutcome::Done(_) => panic!("finished before speculation went live"),
        }
    };
    let again = machine_to_bytes(spec, &restore(&bytes));
    assert_eq!(bytes, again);
}

// ---- damaged-file rejection ------------------------------------------------

#[test]
fn bit_flips_anywhere_are_rejected_with_structured_errors() {
    let bytes = snapshot_at(&clean_cfg(5), "sor", 200);
    // Flip one bit at a spread of offsets: header, early payload,
    // middle, and inside the trailing checksum itself.
    let offsets = [6, 40, bytes.len() / 2, bytes.len() - 3];
    for &off in &offsets {
        let mut bad = bytes.clone();
        bad[off] ^= 0x10;
        match machine_from_bytes(&bad) {
            Err(SimError::CheckpointCorrupt { path, detail }) => {
                assert_eq!(path, "<memory>");
                assert!(
                    detail.contains("checksum"),
                    "flip at {off}: unexpected detail '{detail}'"
                );
            }
            Err(e) => panic!("flip at {off}: wrong error {e}"),
            Ok(_) => panic!("flip at {off}: corrupt checkpoint was accepted"),
        }
    }
}

#[test]
fn truncation_at_any_length_is_rejected() {
    let bytes = snapshot_at(&clean_cfg(5), "sor", 200);
    for len in [0, 4, 12, bytes.len() / 3, bytes.len() - 1] {
        match machine_from_bytes(&bytes[..len]) {
            Err(SimError::CheckpointCorrupt { .. }) => {}
            Err(e) => panic!("truncated to {len}: wrong error {e}"),
            Ok(_) => panic!("truncated to {len}: accepted"),
        }
    }
}

#[test]
fn wrong_version_is_rejected_with_both_versions_reported() {
    let mut bytes = snapshot_at(&clean_cfg(5), "sor", 200);
    bytes[4] = 9; // version byte sits right after the 4-byte magic
    match machine_from_bytes(&bytes) {
        Err(SimError::CheckpointVersion { found, expected, .. }) => {
            assert_eq!(found, 9);
            assert_eq!(expected, 1);
        }
        Err(e) => panic!("wrong error {e}"),
        Ok(_) => panic!("future-version checkpoint was accepted"),
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = snapshot_at(&clean_cfg(5), "sor", 200);
    bytes[..4].copy_from_slice(b"NOPE");
    match machine_from_bytes(&bytes) {
        Err(SimError::CheckpointCorrupt { detail, .. }) => {
            assert!(detail.contains("magic"), "unexpected detail '{detail}'");
        }
        Err(e) => panic!("wrong error {e}"),
        Ok(_) => panic!("non-checkpoint bytes were accepted"),
    }
}

#[test]
fn missing_file_is_an_io_error_with_the_path() {
    let path = std::path::Path::new("/nonexistent/dir/run.nwckpt");
    match nwcache::checkpoint::load_file(path) {
        Err(SimError::Io { path, .. }) => {
            assert!(path.contains("run.nwckpt"));
        }
        Err(e) => panic!("wrong error {e}"),
        Ok(_) => panic!("loaded a checkpoint that does not exist"),
    }
}
