//! Analytic validation: key end-to-end latencies measured by the
//! simulator must match hand-computed expectations from the paper's
//! Table 1 constants (within modelling slack). These tests anchor the
//! machine model to the physics it claims to implement — if a future
//! change silently shifts a latency path, they fail.

use nw_apps::synth::{build as synth_build, SynthConfig};
use nw_apps::AppId;
use nwcache::config::{MachineConfig, MachineKind, PrefetchMode};
use nwcache::{run_app, Machine};

/// 1 pcycle = 5 ns; Table 1 rates as pcycle figures.
const PAGE: f64 = 4096.0;
const MEM_BUS: f64 = PAGE / 4.0; // 800 MB/s = 4 B/pc
const IO_BUS: f64 = PAGE / 1.5; // 300 MB/s = 1.5 B/pc
const MESH: f64 = PAGE / 1.0; // 200 MB/s = 1 B/pc
const DISK_XFER: f64 = PAGE / 0.1; // 20 MB/s = 0.1 B/pc
const SEEK_MIN: f64 = 400_000.0; // 2 ms
const ROT: f64 = 800_000.0; // 4 ms
const RING_RT: f64 = 10_400.0; // 52 us
const RING_XFER: f64 = PAGE / 6.25; // 1.25 GB/s

/// A one-processor machine with ample memory running a light
/// sequential read of fresh pages: every fault is a cold
/// controller-cache miss served by the mechanics, with zero
/// contention.
fn uncontended_cold_reads() -> nwcache::RunMetrics {
    let mut cfg = MachineConfig::paper_default(MachineKind::Standard, PrefetchMode::Naive);
    cfg.nodes = 1;
    cfg.io_nodes = 1;
    cfg.ring_channels = 1;
    let synth = synth_build(
        SynthConfig {
            data_bytes: 512 * 1024, // fits the single node's memory? no: 256KB memory
            write_frac: 0.0,
            random_frac: 0.0,
            iters: 1,
            stride_lines: 64, // one access per page
            compute_per_line: 1000,
        },
        1,
        7,
    );
    Machine::from_build(cfg, synth).run()
}

#[test]
fn cold_disk_miss_latency_matches_mechanics() {
    let m = uncontended_cold_reads();
    assert!(m.fault_latency_disk_miss.count() > 0, "no cold misses");
    let measured = m.fault_latency_disk_miss.mean();
    // Expected: near seek + rotation + transfer + io bus + mesh-local
    // + memory bus. Sequential group reads often skip positioning, so
    // the mean lies between "transfer only" and "full positioning".
    let full = SEEK_MIN + ROT + DISK_XFER + IO_BUS + MEM_BUS + 200.0;
    let seq = DISK_XFER + IO_BUS + MEM_BUS + 200.0;
    assert!(
        measured >= seq * 0.8 && measured <= full * 1.8,
        "cold miss mean {measured:.0} outside [{:.0}, {:.0}]",
        seq * 0.8,
        full * 1.8
    );
}

#[test]
fn disk_cache_hit_latency_near_six_k() {
    // The paper: "it takes about 6K pcycles to read a page from a disk
    // cache in the total absence of contention". Our uncontended path:
    // request mesh + io bus (2731) + local mesh + memory bus (1024).
    let m = uncontended_cold_reads();
    if m.fault_latency_disk_hit.count() == 0 {
        return; // all sequential fills were classified miss-in-flight
    }
    let measured = m.fault_latency_disk_hit.mean();
    assert!(
        (3_000.0..20_000.0).contains(&measured),
        "disk-cache hit mean {measured:.0} not in the ~6K regime"
    );
}

#[test]
fn ring_victim_read_latency_is_about_a_round_trip() {
    // Victim reads wait on average ~R/2..R for the slot plus the
    // off-ring transfer and two local bus crossings.
    let cfg = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Optimal);
    let m = run_app(&cfg, AppId::Gauss);
    assert!(m.fault_latency_ring.count() > 100);
    let measured = m.fault_latency_ring.mean();
    let lo = 0.2 * RING_RT;
    let hi = 3.0 * (RING_RT + RING_XFER + IO_BUS + MEM_BUS);
    assert!(
        measured >= lo && measured <= hi,
        "ring hit mean {measured:.0} outside [{lo:.0}, {hi:.0}]"
    );
}

#[test]
fn ring_swap_out_cost_is_bus_plus_insertion() {
    // With a roomy channel, a ring swap-out costs mem bus + I/O bus +
    // channel serialization (~4.4 Kpc) — the "write staging" number.
    let cfg = MachineConfig::paper_default(MachineKind::NwCache, PrefetchMode::Naive);
    let m = run_app(&cfg, AppId::Sor);
    assert!(m.swap_outs > 100);
    let expected = MEM_BUS + IO_BUS + RING_XFER;
    let measured = m.swap_out_time.min().unwrap() as f64;
    assert!(
        (measured - expected).abs() / expected < 0.5,
        "min ring swap-out {measured:.0} vs expected {expected:.0}"
    );
}

#[test]
fn mesh_page_transfer_dominates_remote_fault_legs() {
    // A page crossing the mesh serializes ~4096 cycles per link; the
    // uncontended remote fault must exceed that plus the I/O bus.
    let m = uncontended_cold_reads();
    let floor = IO_BUS + MEM_BUS; // node 0 is its own I/O node here
    assert!(
        m.fault_latency_disk_hit.count() == 0
            || m.fault_latency_disk_hit.mean() > floor * 0.9,
        "hit latency below the physical floor"
    );
    let _ = MESH;
}

#[test]
fn single_node_machine_runs_every_app() {
    // Degenerate geometry: 1 node, 1 disk, 1 channel.
    let mut cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.05);
    cfg.nodes = 1;
    cfg.io_nodes = 1;
    cfg.ring_channels = 1;
    for app in [AppId::Sor, AppId::Radix] {
        let m = run_app(&cfg, app);
        assert!(m.exec_time > 0, "{app:?}");
        assert_eq!(m.breakdown.len(), 1);
    }
}

#[test]
fn two_node_machine_runs() {
    let mut cfg = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Optimal, 0.05);
    cfg.nodes = 2;
    cfg.io_nodes = 1;
    let m = run_app(&cfg, AppId::Mg);
    assert_eq!(m.breakdown.len(), 2);
}
