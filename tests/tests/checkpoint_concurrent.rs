//! Checkpoints under concurrency, and warm-start equivalence.
//!
//! The `nwsim serve` server saves and loads checkpoints from many
//! job threads at once (warm-cache inserts, drain autosaves), so the
//! atomic temp + rename writer must hold up under contention: saves
//! to distinct paths in a shared directory never interfere, and
//! racing saves to the *same* path always leave one writer's complete
//! file — never an interleaving. On top of that, the warm-state cache
//! is only sound if a warm-started run is bit-identical to a cold one
//! on every cell, including faulted ones, which is pinned here
//! end-to-end.

use nw_server::cache::{warm_start, WarmStart};
use nw_server::WarmCache;
use nwcache::checkpoint;
use nwcache::config::RunParams;
use nwcache::workload::AppSel;
use nwcache::{try_run_sel, Machine, MachineConfig, RunOutcome};
use std::path::PathBuf;
use std::thread;

const SPEC: &str = "workload:gen:zipf:0.9,ws=48,acc=1500";

fn scratch_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nwckpt-conc-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn cfg() -> MachineConfig {
    RunParams::default().to_config().unwrap()
}

/// A machine paused `events` dispatched events into SPEC.
fn machine_at(cfg: &MachineConfig, events: u64) -> Machine {
    let sel = AppSel::parse(SPEC).unwrap();
    let build = sel.build(cfg).unwrap();
    let mut m = Machine::try_from_build(cfg.clone(), build).unwrap();
    match m.try_run_events(events).unwrap() {
        RunOutcome::Paused => m,
        RunOutcome::Done(_) => panic!("workload finished inside {events} events"),
    }
}

#[test]
fn concurrent_saves_to_distinct_paths_round_trip_exactly() {
    let dir = scratch_dir("distinct");
    let reference = machine_at(&cfg(), 400).checkpoint(SPEC);
    let workers: Vec<_> = (0..8)
        .map(|w| {
            let dir = dir.clone();
            let reference = reference.clone();
            thread::spawn(move || {
                // All threads churn temp files in the same directory.
                let path = dir.join(format!("worker-{w}.nwckpt"));
                for _ in 0..5 {
                    let m = machine_at(&cfg(), 400);
                    checkpoint::save_file(&path, SPEC, &m).unwrap();
                    let (meta, loaded) = checkpoint::load_file(&path).unwrap();
                    assert_eq!(meta.spec, SPEC);
                    assert_eq!(meta.events, 400);
                    // The loaded machine re-checkpoints to the exact
                    // bytes every other thread is writing.
                    assert_eq!(loaded.checkpoint(SPEC), reference, "worker {w}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn racing_saves_to_one_path_never_leave_a_torn_file() {
    let dir = scratch_dir("same-path");
    let path = dir.join("contended.nwckpt");
    // Two distinct machine states → two distinct valid byte images.
    let images: Vec<Vec<u8>> = [300u64, 900]
        .iter()
        .map(|&e| machine_at(&cfg(), e).checkpoint(SPEC))
        .collect();
    let workers: Vec<_> = [300u64, 900]
        .into_iter()
        .map(|events| {
            let path = path.clone();
            thread::spawn(move || {
                let m = machine_at(&cfg(), events);
                for _ in 0..10 {
                    checkpoint::save_file(&path, SPEC, &m).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    // Whichever save landed last, the file is complete and valid —
    // byte-equal to one of the two images, never a mixture.
    checkpoint::validate_file(&path).expect("contended file must stay valid");
    let on_disk = std::fs::read(&path).unwrap();
    assert!(
        images.iter().any(|img| img == &on_disk),
        "file matches neither writer's checkpoint image"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm-started runs must be bit-identical to cold ones on clean and
/// faulted cells alike — faulted cells are the hard case, because the
/// fault RNG streams live in checkpointed state.
#[test]
fn warm_start_equals_cold_on_clean_and_faulted_cells() {
    let clean = cfg();
    let mut faulted = cfg();
    faulted.faults.disk_error_rate = 0.05;
    faulted.faults.disk_stuck_rate = 0.02;
    faulted.faults.mesh_drop_rate = 0.02;
    for (name, cell) in [("clean", clean), ("faulted", faulted)] {
        let sel = AppSel::parse(SPEC).unwrap();
        let cold = try_run_sel(&cell, &sel).unwrap().summary().to_json();
        let cache = WarmCache::new(None, 4);
        for pass in ["miss", "hit"] {
            let mut m = match warm_start(&cache, &cell, SPEC, 500, false).unwrap() {
                WarmStart::Ready { machine, hit } => {
                    assert_eq!(hit, pass == "hit", "{name}: unexpected cache state");
                    machine
                }
                WarmStart::Finished(_) => panic!("{name}: run ended inside warmup"),
            };
            let warm = match m.try_run_events(u64::MAX).unwrap() {
                RunOutcome::Done(metrics) => metrics.summary().to_json(),
                RunOutcome::Paused => panic!("unbounded run paused"),
            };
            assert_eq!(warm, cold, "{name}/{pass}: warm summary diverged from cold");
        }
        // Paranoid verification agrees: the cached checkpoint is
        // bit-identical to a fresh cold warmup.
        assert!(matches!(
            warm_start(&cache, &cell, SPEC, 500, true),
            Ok(WarmStart::Ready { hit: true, .. })
        ));
    }
}
