//! Integration tests for the beyond-the-paper extensions: the DCD
//! baseline, the windowed prefetcher, machine-size scaling and the
//! ablation experiments.

use nw_apps::AppId;
use nwcache::config::{MachineConfig, MachineKind, PrefetchMode};
use nwcache::experiments as exp;
use nwcache::run_app;

const SCALE: f64 = 0.1;

#[test]
fn dcd_machine_completes_and_stages_writes() {
    let cfg = MachineConfig::scaled_paper(MachineKind::Dcd, PrefetchMode::Naive, SCALE);
    let m = run_app(&cfg, AppId::Sor);
    assert_eq!(m.machine, "dcd");
    assert!(m.swap_outs > 0);
    assert!(m.exec_time > 0);
}

#[test]
fn dcd_improves_swap_outs_over_standard() {
    // The DCD's whole point: log-disk appends free the RAM cache much
    // faster than in-place data-disk writes.
    let std_cfg = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Naive, SCALE);
    let dcd_cfg = MachineConfig::scaled_paper(MachineKind::Dcd, PrefetchMode::Naive, SCALE);
    let s = run_app(&std_cfg, AppId::Sor);
    let d = run_app(&dcd_cfg, AppId::Sor);
    assert!(
        d.swap_out_time.mean() < s.swap_out_time.mean(),
        "dcd {} vs std {}",
        d.swap_out_time.mean(),
        s.swap_out_time.mean()
    );
}

#[test]
fn nwcache_beats_dcd_on_swap_staging() {
    // Paper's qualitative argument (related work): the NWCache buffer
    // is re-readable at ring speed and costs no extra spindle; the
    // DCD's is a disk. On swap staging the ring wins.
    let dcd_cfg = MachineConfig::scaled_paper(MachineKind::Dcd, PrefetchMode::Naive, SCALE);
    let nwc_cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, SCALE);
    let d = run_app(&dcd_cfg, AppId::Sor);
    let n = run_app(&nwc_cfg, AppId::Sor);
    assert!(
        n.swap_out_time.mean() < d.swap_out_time.mean(),
        "nwc {} vs dcd {}",
        n.swap_out_time.mean(),
        d.swap_out_time.mean()
    );
    assert!(n.exec_time < d.exec_time);
}

#[test]
fn dcd_comparison_experiment_shape() {
    let rows = exp::dcd_comparison(PrefetchMode::Naive, 0.05);
    assert_eq!(rows.len(), 7);
    // The NWCache wins the majority of the suite even at tiny scale.
    let nwc_wins = rows.iter().filter(|&&(_, s, _, n)| n < s).count();
    assert!(nwc_wins >= 5, "nwcache won only {nwc_wins}/7");
}

#[test]
fn window_prefetching_runs_and_prefetches() {
    let cfg = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Window, SCALE);
    let m = run_app(&cfg, AppId::Sor);
    assert_eq!(m.prefetch, "window");
    // The stream-extending prefetcher must produce some cache hits on
    // SOR's sequential sweeps.
    assert!(
        m.fault_latency_disk_hit.count() > 0,
        "window prefetcher produced no disk-cache hits"
    );
}

#[test]
fn window_mode_beats_naive_on_sequential_apps() {
    // SOR sweeps rows sequentially: staying ahead of the reader must
    // not be slower than prefetching only on misses.
    let naive = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Naive, SCALE);
    let window = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Window, SCALE);
    let mn = run_app(&naive, AppId::Sor);
    let mw = run_app(&window, AppId::Sor);
    assert!(
        mw.exec_time < mn.exec_time * 11 / 10,
        "window {} much slower than naive {}",
        mw.exec_time,
        mn.exec_time
    );
}

#[test]
fn scaling_sweep_runs_all_machine_sizes() {
    let rows = exp::scaling_sweep(AppId::Sor, PrefetchMode::Naive, &[2, 4, 8, 16], 0.05);
    assert_eq!(rows.len(), 4);
    for (n, s, w) in rows {
        assert!(s > 0 && w > 0, "{n} nodes produced a zero time");
    }
}

#[test]
fn sixteen_node_machine_is_consistent() {
    let mut cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.05);
    cfg.nodes = 16;
    cfg.io_nodes = 8;
    cfg.ring_channels = 16;
    assert!(cfg.validate().is_ok());
    let m = run_app(&cfg, AppId::Radix);
    assert_eq!(m.breakdown.len(), 16);
    assert!(m.exec_time > 0);
}

#[test]
fn flush_delay_ablation_affects_combining() {
    let rows = exp::ablation_flush_delay(
        AppId::Sor,
        MachineKind::NwCache,
        PrefetchMode::Optimal,
        &[0, 500_000],
        SCALE,
    );
    assert_eq!(rows.len(), 2);
    // A longer accumulation window cannot reduce combining on SOR's
    // consecutive swap-outs.
    let (_, comb_zero, _) = rows[0];
    let (_, comb_long, _) = rows[1];
    assert!(
        comb_long + 1e-9 >= comb_zero,
        "combining {comb_long} < {comb_zero} despite longer window"
    );
}

#[test]
fn ring_geometry_ablation_reports_capacity() {
    let rows = exp::ablation_ring_geometry(AppId::Gauss, PrefetchMode::Naive, &[26, 52, 104], SCALE);
    assert_eq!(rows.len(), 3);
    // Slots scale with fiber length.
    assert!(rows[0].1 < rows[2].1);
}

#[test]
fn json_summary_is_complete() {
    let cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, SCALE);
    let m = run_app(&cfg, AppId::Sor);
    let s = m.summary();
    let json = s.to_json();
    for key in [
        "app",
        "machine",
        "prefetch",
        "exec_time",
        "page_faults",
        "swap_outs",
        "swap_out_mean",
        "ring_hit_rate",
        "no_free_cycles",
        "other_cycles",
        "disk_media_errors",
        "ring_pages_lost",
    ] {
        assert!(json.contains(&format!("\"{key}\":")), "missing key {key}");
    }
    assert!(json.contains("\"app\":\"sor\""));
    assert!(json.contains("\"machine\":\"nwcache\""));
    assert!(json.starts_with('{') && json.ends_with('}'));
}
