//! Golden snapshot of the `nwcache-sweep-v1` report schema. The
//! `BENCH_*.json` trajectory files are diffed across PRs, so field
//! order and formatting must never drift by accident. An intentional
//! schema change must bump the `schema` string and update this
//! snapshot in the same commit.

use nwcache::{RunMetrics, SweepReport, SweepRow};

fn sample_report() -> SweepReport {
    let m = RunMetrics {
        app: "sor".into(),
        machine: "nwcache".into(),
        prefetch: "naive".into(),
        exec_time: 123_456,
        page_faults: 789,
        ring_hits: 321,
        ..Default::default()
    };
    SweepReport {
        scale: 0.25,
        jobs: 4,
        cores: 8,
        wall_ms: 1500,
        rows: vec![
            SweepRow {
                app: "sor".into(),
                machine: "nwcache".into(),
                prefetch: "naive".into(),
                result: Ok(m.summary()),
            },
            SweepRow {
                app: "gauss".into(),
                machine: "standard".into(),
                prefetch: "optimal".into(),
                result: Err("simulation worker panicked: boom".into()),
            },
        ],
    }
}

#[test]
fn sweep_json_snapshot_is_stable() {
    assert_eq!(sample_report().to_json(), GOLDEN);
}

#[test]
fn sweep_json_error_accounting() {
    let r = sample_report();
    assert_eq!(r.errors(), 1);
    assert_eq!(r.rows.len(), 2);
}

const GOLDEN: &str = r#"{
  "schema": "nwcache-sweep-v1",
  "scale": 0.25,
  "jobs": 4,
  "cores": 8,
  "wall_ms": 1500,
  "runs": [
    {"app":"sor","machine":"nwcache","prefetch":"naive","status":"ok","metrics":{"app":"sor","machine":"nwcache","prefetch":"naive","exec_time":123456,"page_faults":789,"swap_outs":0,"swap_nacks":0,"swap_out_mean":0,"swap_out_max":0,"swap_out_p99":0,"fault_p99":0,"write_combining_mean":0,"ring_hits":321,"ring_hit_rate":100,"fault_disk_hit_mean":0,"fault_disk_miss_mean":0,"fault_ring_mean":0,"shootdowns":0,"mesh_bytes":0,"mesh_messages":0,"mesh_utilization":0,"ring_peak_pages":0,"l2_miss_ratio":0,"no_free_cycles":0,"transit_cycles":0,"fault_cycles":0,"tlb_cycles":0,"other_cycles":0,"disk_media_errors":0,"disk_stuck_timeouts":0,"mesh_dropped":0,"mesh_corrupted":0,"ring_pages_lost":0,"swap_retries":0,"dead_channels":0,"degraded_ring_swaps":0}},
    {"app":"gauss","machine":"standard","prefetch":"optimal","status":"error","error":"simulation worker panicked: boom"}
  ]
}"#;
