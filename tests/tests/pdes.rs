//! PDES differential-determinism and checkpoint-interchange suite.
//!
//! The contract under test is the one `nwsim run --sim-threads K`
//! relies on: the parallel event engine delivers the *same event
//! sequence* as the serial engine — bit-identical `RunMetrics` and
//! `RunSummary` JSON at any worker count, across clean, faulted,
//! adaptive-prefetch, and generated-workload cells — and a checkpoint
//! written mid-run is byte-identical regardless of which engine wrote
//! it, restoring interchangeably into either. Because tests build in
//! debug mode, every `debug_assert!` in `machine::pdes` (lane/serial
//! agreement, monotone lane clocks, peek/pop agreement) doubles as a
//! property check: a lookahead or round-isolation violation panics
//! here instead of silently skewing a release run.

use nwcache::checkpoint::{machine_from_bytes, machine_to_bytes};
use nwcache::config::{MachineConfig, MachineKind, PrefetchMode};
use nwcache::{AppSel, Machine, RunMetrics, RunOutcome};

const SCALE: f64 = 0.05;

/// The worker counts the CI matrix pins: serial, two, four, and one
/// per core (`--sim-threads 0`).
const THREADS: [usize; 4] = [1, 2, 4, 0];

fn clean_cfg() -> MachineConfig {
    MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, SCALE)
}

fn faulted_cfg() -> MachineConfig {
    let mut cfg = clean_cfg();
    cfg.faults.disk_error_rate = 0.02;
    cfg.faults.mesh_drop_rate = 0.01;
    cfg
}

fn build_machine(cfg: &MachineConfig, spec: &str, threads: usize) -> Machine {
    let sel = AppSel::parse(spec).expect("spec parses");
    let build = sel.build(cfg).expect("workload builds");
    let mut m = Machine::try_from_build(cfg.clone(), build).expect("machine builds");
    m.set_sim_threads(threads);
    m
}

fn finish(m: &mut Machine) -> RunMetrics {
    match m.try_run_events(u64::MAX).expect("run completes") {
        RunOutcome::Done(metrics) => *metrics,
        RunOutcome::Paused => unreachable!("unbounded run cannot pause"),
    }
}

#[test]
fn all_cell_kinds_are_bit_identical_across_thread_counts() {
    // One cell per engine regime: clean (pure table app), faulted
    // (fault RNG streams + conservation checks), adaptive prefetch
    // (speculative controller traffic), and a generated stochastic
    // workload. Faults, observers, and shared pages all force the
    // engine down its serial-delivery path, so this is a check that
    // the PDES loop *is* the serial loop whenever it must be.
    let adaptive = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Adaptive, 0.1);
    let cells: Vec<(&str, MachineConfig, &str)> = vec![
        ("clean", clean_cfg(), "sor"),
        ("faulted", faulted_cfg(), "sor"),
        ("adaptive", adaptive, "workload:gen:seq,ws=256,acc=3000,wf=0.1"),
        ("generated", clean_cfg(), "workload:gen:zipf,ws=512,acc=2000,wf=0.2"),
    ];
    for (label, cfg, spec) in &cells {
        let reference = finish(&mut build_machine(cfg, spec, 1));
        for &k in &THREADS[1..] {
            let mut m = build_machine(cfg, spec, k);
            let got = finish(&mut m);
            assert_eq!(
                reference, got,
                "{label}: sim-threads {k} diverged from serial"
            );
            assert_eq!(
                reference.summary().to_json(),
                got.summary().to_json(),
                "{label}: RunSummary JSON diverged at sim-threads {k}"
            );
        }
    }
}

#[test]
fn node_private_cells_engage_parallel_rounds_and_stay_bit_identical() {
    // A node-private synthetic workload is the regime the parallel
    // lanes exist for. Every thread count must reproduce the serial
    // metrics exactly, and the multi-threaded arms must actually take
    // the parallel path (a fallback-to-serial engine would pass the
    // equality check vacuously).
    for kind in [MachineKind::NwCache, MachineKind::Standard] {
        let mut cfg = MachineConfig::paper_default(kind, PrefetchMode::Naive);
        cfg.nodes = 4;
        cfg.io_nodes = 2;
        cfg.ring_channels = 4;
        let nprocs = cfg.nodes as usize;
        let synth = nw_apps::synth::SynthConfig {
            data_bytes: 16 * 4096 * nprocs as u64,
            stride_lines: 1,
            write_frac: 0.25,
            random_frac: 0.0,
            iters: 3,
            compute_per_line: 10,
        };
        let mk = |threads: usize| {
            // `AppBuild` holds live action streams and is rebuilt per
            // arm; builds are pure functions of (config, seed).
            let build = nw_apps::synth::build_private(synth, nprocs, 0xBEEF);
            let mut m = Machine::try_from_build(cfg.clone(), build).expect("builds");
            m.set_sim_threads(threads);
            m
        };
        let mut serial = mk(1);
        let reference = finish(&mut serial);
        for &k in &THREADS[1..] {
            let mut m = mk(k);
            let resolved = m.sim_threads();
            let got = finish(&mut m);
            assert_eq!(reference, got, "{kind:?}: sim-threads {k} diverged");
            let (parallel_rounds, _) = m.pdes_rounds();
            // `--sim-threads 0` resolves to one worker per core, which
            // on a single-core host is the serial engine itself.
            if resolved > 1 {
                assert!(
                    parallel_rounds > 0,
                    "{kind:?}: sim-threads {k} never took the parallel path"
                );
            }
        }
        let (parallel_rounds, _) = serial.pdes_rounds();
        assert_eq!(parallel_rounds, 0, "{kind:?}: serial engine counted rounds");
    }
}

#[test]
fn checkpoints_interchange_between_serial_and_pdes_byte_identically() {
    // `nwsim run --sim-threads 4 --checkpoint` followed by
    // `nwsim resume` on a serial build (or vice versa) must be
    // indistinguishable from never having switched engines: the
    // snapshot bytes are engine-independent, and either engine
    // finishes a restored machine to the same bit-identical end state.
    for (label, cfg) in [("clean", clean_cfg()), ("faulted", faulted_cfg())] {
        let reference = finish(&mut build_machine(&cfg, "sor", 1));

        let snapshot = |threads: usize| {
            let mut m = build_machine(&cfg, "sor", threads);
            match m.try_run_events(300).expect("run ok") {
                RunOutcome::Paused => {}
                RunOutcome::Done(_) => panic!("{label}: finished before 300 events"),
            }
            assert_eq!(m.events_dispatched(), 300, "{label}: pause point drifted");
            machine_to_bytes("sor", &m)
        };
        let from_serial = snapshot(1);
        let from_pdes = snapshot(4);
        assert_eq!(
            from_serial, from_pdes,
            "{label}: checkpoint bytes depend on the engine that wrote them"
        );

        // Cross-restore: PDES snapshot finished serially, serial
        // snapshot finished on the parallel engine.
        let (_, mut m) = machine_from_bytes(&from_pdes).expect("restore ok");
        m.set_sim_threads(1);
        assert_eq!(finish(&mut m), reference, "{label}: pdes->serial resume diverged");
        let (_, mut m) = machine_from_bytes(&from_serial).expect("restore ok");
        m.set_sim_threads(4);
        assert_eq!(finish(&mut m), reference, "{label}: serial->pdes resume diverged");

        // And a restored machine re-serializes canonically, so
        // `ckpt-diff` across engines shows every section as `same`.
        let (_, m) = machine_from_bytes(&from_pdes).expect("restore ok");
        assert_eq!(machine_to_bytes("sor", &m), from_serial);
    }
}

#[test]
fn chunked_pdes_runs_pause_at_exact_budgets() {
    // `--checkpoint-every N` autosaves rely on the engine pausing at
    // exactly N dispatched events; the PDES drain clips rounds to the
    // remaining budget rather than overshooting.
    let cfg = clean_cfg();
    let mut chunked = build_machine(&cfg, "sor", 4);
    let mut dispatched = 0u64;
    let end = loop {
        match chunked.try_run_events(97).expect("run ok") {
            RunOutcome::Paused => {
                dispatched += 97;
                assert_eq!(chunked.events_dispatched(), dispatched, "budget overshoot");
            }
            RunOutcome::Done(metrics) => break *metrics,
        }
    };
    assert_eq!(end, finish(&mut build_machine(&cfg, "sor", 1)));
}

#[test]
fn lookahead_is_positive_and_below_every_channel_floor() {
    // The conservative lookahead underpins the engine's causality
    // argument (DESIGN.md §16): it must be a *lower* bound on every
    // cross-node channel, and must never degenerate to zero (which
    // would forbid all parallel rounds) at any paper-derived scale.
    for kind in [MachineKind::Standard, MachineKind::NwCache] {
        for scale in [0.05, 0.1, 1.0] {
            for prefetch in [PrefetchMode::Naive, PrefetchMode::Optimal, PrefetchMode::Adaptive] {
                let cfg = MachineConfig::scaled_paper(kind, prefetch, scale);
                let la = cfg.pdes_lookahead();
                assert!(la > 0, "{kind:?} scale {scale}: zero lookahead");
                let mesh = nw_mesh::MeshConfig::paper_default();
                let mesh_floor = 2 * mesh.ni_overhead + mesh.switch_delay + cfg.ctl_msg_bytes;
                assert!(la <= mesh_floor, "{kind:?}: lookahead above the mesh floor");
                assert!(la <= cfg.ring_round_trip, "{kind:?}: lookahead above a ring trip");
                let disk_floor = cfg.page_bytes * nw_sim::time::usecs(1) / 20;
                assert!(la <= disk_floor, "{kind:?}: lookahead above the disk floor");
            }
        }
    }
}
