//! Golden regression tests: pin the *relationships* between runs that
//! every future change must preserve, plus self-consistency checks
//! that hold for any correct model. (We deliberately do not pin raw
//! cycle counts — intentional model changes may move them — but the
//! qualitative results of the paper must never flip.)

use nw_apps::AppId;
use nwcache::config::{MachineConfig, MachineKind, PrefetchMode};
use nwcache::run_app;

fn run(kind: MachineKind, pf: PrefetchMode, app: AppId, scale: f64) -> nwcache::RunMetrics {
    run_app(&MachineConfig::scaled_paper(kind, pf, scale), app)
}

#[test]
fn golden_swap_out_ordering_all_apps() {
    // NWCache swap-outs beat standard swap-outs for every app that
    // swaps, under both prefetching extremes.
    for pf in [PrefetchMode::Optimal, PrefetchMode::Naive] {
        for app in AppId::ALL {
            let s = run(MachineKind::Standard, pf, app, 0.1);
            let n = run(MachineKind::NwCache, pf, app, 0.1);
            if s.swap_outs < 200 {
                continue; // not enough swap traffic at this scale
            }
            // At reduced scale the shrunken ring (2 slots/channel)
            // can throttle the NWCache; allow a 2x band but never a
            // blowout.
            assert!(
                n.swap_out_time.mean() < s.swap_out_time.mean() * 2.0,
                "{app:?}/{pf:?}: nwc {:.0} !< 2x std {:.0}",
                n.swap_out_time.mean(),
                s.swap_out_time.mean()
            );
        }
    }
}

#[test]
fn golden_optimal_beats_naive_on_standard_machine() {
    // Idealized prefetching can only help.
    for app in [AppId::Sor, AppId::Gauss, AppId::Mg, AppId::Fft] {
        let o = run(MachineKind::Standard, PrefetchMode::Optimal, app, 0.1);
        let n = run(MachineKind::Standard, PrefetchMode::Naive, app, 0.1);
        assert!(
            o.exec_time < n.exec_time,
            "{app:?}: optimal {} !< naive {}",
            o.exec_time,
            n.exec_time
        );
    }
}

#[test]
fn golden_window_between_extremes_for_read_latency() {
    // The realistic prefetcher's aggregate fault cost sits between
    // naive and optimal on a sequential-sweep app.
    let app = AppId::Sor;
    let naive = run(MachineKind::Standard, PrefetchMode::Naive, app, 0.1);
    let window = run(MachineKind::Standard, PrefetchMode::Window, app, 0.1);
    let optimal = run(MachineKind::Standard, PrefetchMode::Optimal, app, 0.1);
    assert!(
        optimal.exec_time <= window.exec_time,
        "optimal {} > window {}",
        optimal.exec_time,
        window.exec_time
    );
    assert!(
        window.exec_time <= naive.exec_time * 11 / 10,
        "window {} much worse than naive {}",
        window.exec_time,
        naive.exec_time
    );
}

#[test]
fn golden_fault_conservation() {
    // Faults never disappear: every fault is classified, and every
    // swap has a matching eviction.
    for kind in [MachineKind::Standard, MachineKind::NwCache, MachineKind::Dcd] {
        let m = run(kind, PrefetchMode::Naive, AppId::Radix, 0.1);
        let classified = m.fault_latency_disk_hit.count()
            + m.fault_latency_disk_miss.count()
            + m.fault_latency_ring.count();
        assert_eq!(classified, m.page_faults, "{kind:?}");
        // Swap-outs still in flight when the last processor finishes
        // are abandoned, so the tally may trail the count slightly.
        assert!(
            m.swap_out_time.count() <= m.swap_outs,
            "{kind:?}: tallied more swaps than started"
        );
        assert!(
            m.swap_outs - m.swap_out_time.count() <= 16,
            "{kind:?}: {} of {} swap-outs unaccounted",
            m.swap_outs - m.swap_out_time.count(),
            m.swap_outs
        );
    }
}

#[test]
fn golden_same_seed_same_everything() {
    // Full metric equality across repeated runs — the strongest
    // determinism check (covers histograms and the occupancy series).
    let cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.1);
    let a = run_app(&cfg, AppId::Gauss);
    let b = run_app(&cfg, AppId::Gauss);
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.swap_out_percentile(99.0), b.swap_out_percentile(99.0));
    assert_eq!(a.fault_percentile(50.0), b.fault_percentile(50.0));
    assert_eq!(a.ring_occupancy, b.ring_occupancy);
    assert_eq!(a.summary().to_json(), b.summary().to_json());
}

#[test]
fn golden_different_seed_different_radix() {
    // Radix keys come from the seed: the access stream, and therefore
    // the timing, must change.
    let mut c1 = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Naive, 0.1);
    c1.seed = 1;
    let mut c2 = c1.clone();
    c2.seed = 2;
    let a = run_app(&c1, AppId::Radix);
    let b = run_app(&c2, AppId::Radix);
    assert_ne!(a.exec_time, b.exec_time, "seed had no effect on radix");
}

#[test]
fn golden_ring_occupancy_series_recorded() {
    let cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, 0.1);
    let m = run_app(&cfg, AppId::Sor);
    assert!(!m.ring_occupancy.is_empty(), "no occupancy samples");
    let cap = (cfg.ring_channels * cfg.ring_slots_per_channel) as u64;
    for &(_, v) in &m.ring_occupancy {
        assert!(v <= cap, "occupancy sample {v} beyond capacity {cap}");
    }
}

#[test]
fn golden_percentiles_bracket_mean() {
    let cfg = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Naive, 0.1);
    let m = run_app(&cfg, AppId::Sor);
    assert!(m.swap_outs > 0);
    let p50 = m.swap_out_percentile(50.0);
    let p99 = m.swap_out_percentile(99.0);
    assert!(p50 <= p99);
    // log2-bucket estimates: p99 upper bucket bound must be at least
    // half the true max's bucket.
    assert!(p99 as f64 >= m.swap_out_time.max().unwrap() as f64 / 4.0);
}
