//! Differential-determinism harness: a sweep fanned across worker
//! threads must be bit-identical to the same sweep run serially, and
//! a failing cell must stay an isolated error row at any job count.
//!
//! The parallel arm's worker count comes from `NWSIM_JOBS` (as in the
//! CI matrix): unset => 4, `0` => one worker per core.

use nw_apps::AppId;
use nwcache::config::{MachineConfig, MachineKind, PrefetchMode};
use nwcache::sweep::run_grid;
use nwcache::SimError;

const SCALE: f64 = 0.05;

fn parallel_jobs() -> usize {
    match std::env::var("NWSIM_JOBS") {
        Ok(v) => match v.parse::<usize>().expect("NWSIM_JOBS must be an integer") {
            0 => nw_sim::pool::default_jobs(),
            n => n,
        },
        Err(_) => 4,
    }
}

/// A reduced apps x machines x prefetch matrix, in the same
/// prefetch-major order as `sweep::paper_matrix`.
fn small_matrix() -> Vec<(MachineConfig, AppId)> {
    let mut grid = Vec::new();
    for prefetch in [PrefetchMode::Optimal, PrefetchMode::Naive] {
        for app in [AppId::Sor, AppId::Gauss, AppId::Fft] {
            for kind in [MachineKind::Standard, MachineKind::NwCache] {
                grid.push((MachineConfig::scaled_paper(kind, prefetch, SCALE), app));
            }
        }
    }
    grid
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let serial = run_grid(1, small_matrix());
    let parallel = run_grid(parallel_jobs(), small_matrix());
    // Full-state equality: every counter, histogram bucket, time
    // series and fault tally — not just the headline numbers.
    assert_eq!(serial, parallel, "jobs={} diverged from serial", parallel_jobs());
    assert!(serial.iter().all(|r| r.is_ok()));
}

#[test]
fn adaptive_prefetch_sweep_is_bit_identical_to_serial() {
    // The adaptive policy adds per-node detectors, a tie-breaking RNG
    // stream, and machine<->controller hint traffic; none of it may
    // depend on which worker thread runs the cell. Driven on the
    // pure-sequential scenario (where speculation is busiest) plus a
    // table app, clean and faulted.
    use nwcache::workload::AppSel;
    use std::sync::Arc;
    let grid = || -> Vec<(MachineConfig, AppSel)> {
        let seq = AppSel::Gen(Arc::new(
            nw_workload::Scenario::parse("seq,ws=256,acc=3000,wf=0.1").expect("spec"),
        ));
        let clean = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Adaptive, 0.1);
        let mut faulted = clean.clone();
        faulted.faults.disk_error_rate = 0.05;
        faulted.faults.mesh_drop_rate = 0.02;
        vec![
            (clean.clone(), seq.clone()),
            (faulted, seq),
            (
                MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Adaptive, SCALE),
                AppSel::Table(AppId::Sor),
            ),
        ]
    };
    let serial = nwcache::sweep::run_sel_grid(1, grid());
    let parallel = nwcache::sweep::run_sel_grid(parallel_jobs(), grid());
    assert_eq!(serial, parallel, "adaptive cells diverged at jobs={}", parallel_jobs());
    let busy = serial[0].as_ref().expect("clean seq cell");
    assert!(busy.prefetch_spec_issued > 0, "sweep must exercise speculation");
}

#[test]
fn fault_grid_is_bit_identical_too() {
    // Fault injection draws from per-run RNG streams; the schedule
    // must not depend on which worker thread runs the cell.
    let grid = || -> Vec<(MachineConfig, AppId)> {
        [0.0, 0.02, 0.05]
            .iter()
            .map(|&rate| {
                let mut cfg =
                    MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, SCALE);
                cfg.faults.disk_error_rate = rate;
                cfg.faults.mesh_drop_rate = rate / 2.0;
                (cfg, AppId::Sor)
            })
            .collect()
    };
    let serial = run_grid(1, grid());
    let parallel = run_grid(parallel_jobs(), grid());
    assert_eq!(serial, parallel);
    // Not a vacuous comparison: the faulted cells really fault.
    let last = serial.last().unwrap().as_ref().expect("faulted run completes");
    assert!(last.disk_media_errors > 0, "no media errors injected");
}

#[test]
fn failing_cell_stays_isolated_at_any_job_count() {
    let grid = || -> Vec<(MachineConfig, AppId)> {
        let good = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Naive, SCALE);
        let mut bad = good.clone();
        bad.faults.disk_error_rate = 7.0; // fails validation
        vec![(good.clone(), AppId::Sor), (bad, AppId::Sor), (good, AppId::Sor)]
    };
    let serial = run_grid(1, grid());
    let parallel = run_grid(parallel_jobs(), grid());
    assert_eq!(serial, parallel);
    assert!(matches!(parallel[1], Err(SimError::BadConfig(_))));
    assert!(parallel[0].is_ok() && parallel[2].is_ok());
    assert_eq!(parallel[0], parallel[2]);
}

#[test]
fn panicking_worker_becomes_an_error_not_a_crash() {
    // A panic inside one worker must surface as that cell's error
    // while sibling simulations complete normally. Driven through the
    // pool directly, since no valid `MachineConfig` panics.
    let cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, SCALE);
    let direct = nwcache::run_app(&cfg, AppId::Sor);
    let tasks: Vec<Box<dyn FnOnce() -> nwcache::RunMetrics + Send>> = vec![
        Box::new({
            let cfg = cfg.clone();
            move || nwcache::run_app(&cfg, AppId::Sor)
        }),
        Box::new(|| panic!("injected worker failure")),
        Box::new({
            let cfg = cfg.clone();
            move || nwcache::run_app(&cfg, AppId::Sor)
        }),
    ];
    // Silence the expected panic's backtrace spew, as the pool's own
    // unit tests do.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let results = nw_sim::pool::run(parallel_jobs(), tasks);
    std::panic::set_hook(hook);
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].as_ref().unwrap(), &direct);
    assert_eq!(results[2].as_ref().unwrap(), &direct);
    let err = results[1].as_ref().unwrap_err();
    assert_eq!(err.index, 1);
    assert!(err.message.contains("injected worker failure"), "got: {}", err.message);
}
