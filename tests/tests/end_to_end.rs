//! End-to-end integration tests spanning all workspace crates: build a
//! full machine, run real applications, and check the paper's headline
//! claims hold qualitatively at reduced scale.

use nw_apps::AppId;
use nwcache::{run_app, MachineConfig, MachineKind, PrefetchMode};

const SCALE: f64 = 0.1;

#[test]
fn full_suite_completes_on_both_machines() {
    for app in AppId::ALL {
        for kind in [MachineKind::Standard, MachineKind::NwCache] {
            let cfg = MachineConfig::scaled_paper(kind, PrefetchMode::Naive, SCALE);
            let m = run_app(&cfg, app);
            assert!(m.exec_time > 0, "{app:?} {kind:?}");
            assert!(m.page_faults > 0, "{app:?} {kind:?} never faulted");
        }
    }
}

#[test]
fn headline_claim_swap_outs_orders_of_magnitude_faster() {
    // Abstract: "the NWCache improves swap-out times by 1 to 3 orders
    // of magnitude" (under optimal prefetching).
    let mut improved = 0;
    let mut total = 0;
    for app in [AppId::Sor, AppId::Gauss, AppId::Mg, AppId::Fft] {
        let std_cfg = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Optimal, SCALE);
        let nwc_cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Optimal, SCALE);
        let s = run_app(&std_cfg, app);
        let n = run_app(&nwc_cfg, app);
        if s.swap_outs == 0 {
            continue;
        }
        total += 1;
        let ratio = s.swap_out_time.mean() / n.swap_out_time.mean().max(1.0);
        if ratio >= 10.0 {
            improved += 1;
        }
    }
    assert!(total >= 3, "too few apps swapped at this scale");
    assert!(
        improved >= total - 1,
        "swap-out improvement below one order of magnitude for {}/{total} apps",
        total - improved
    );
}

#[test]
fn headline_claim_overall_performance_improves_under_optimal() {
    // Paper: improvements of up to 64% under optimal prefetching, and
    // greater than 28% in all cases except Em3d.
    for app in [AppId::Sor, AppId::Gauss, AppId::Mg] {
        let std_cfg = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Optimal, SCALE);
        let nwc_cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Optimal, SCALE);
        let s = run_app(&std_cfg, app);
        let n = run_app(&nwc_cfg, app);
        assert!(
            n.exec_time < s.exec_time,
            "{app:?}: NWCache should win under optimal prefetching"
        );
    }
}

#[test]
fn victim_cache_hit_rate_ordering_matches_table7() {
    // Table 7: Gauss and MG have the highest hit rates (sharing +
    // working set fits memory+ring); Em3d the lowest.
    let rate = |app| {
        let cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Optimal, SCALE);
        run_app(&cfg, app).ring_hit_rate()
    };
    let gauss = rate(AppId::Gauss);
    let em3d = rate(AppId::Em3d);
    assert!(
        gauss > em3d,
        "gauss ({gauss:.1}%) should out-hit em3d ({em3d:.1}%)"
    );
}

#[test]
fn nwcache_reduces_interconnect_traffic() {
    // Benefit (d): page swap-outs are not transferred across the
    // interconnection network.
    let std_cfg = MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Optimal, SCALE);
    let nwc_cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Optimal, SCALE);
    let s = run_app(&std_cfg, AppId::Sor);
    let n = run_app(&nwc_cfg, AppId::Sor);
    let s_norm = s.mesh_bytes as f64 / s.page_faults.max(1) as f64;
    let n_norm = n.mesh_bytes as f64 / n.page_faults.max(1) as f64;
    assert!(
        n_norm < s_norm,
        "mesh bytes per fault: nwc {n_norm:.0} vs std {s_norm:.0}"
    );
}

#[test]
fn deterministic_across_thread_scheduling() {
    // run_parallel spawns threads; the runs themselves must remain
    // bit-identical regardless.
    let cfg = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, SCALE);
    let jobs = vec![(cfg.clone(), AppId::Radix), (cfg.clone(), AppId::Radix)];
    let results = nwcache::experiments::run_parallel(jobs);
    assert_eq!(results[0].exec_time, results[1].exec_time);
    assert_eq!(results[0].page_faults, results[1].page_faults);
    let direct = run_app(&cfg, AppId::Radix);
    assert_eq!(direct.exec_time, results[0].exec_time);
}

#[test]
fn experiment_tables_have_a_row_per_app() {
    let rows = nwcache::experiments::table_swap_out(PrefetchMode::Naive, 0.05);
    assert_eq!(rows.len(), 7);
    let names: Vec<&str> = rows.iter().map(|r| r.app.as_str()).collect();
    assert_eq!(
        names,
        vec!["em3d", "fft", "gauss", "lu", "mg", "radix", "sor"]
    );
}

#[test]
fn figure_breakdowns_normalize_to_standard() {
    let bars = nwcache::experiments::figure_breakdown(PrefetchMode::Naive, 0.05);
    assert_eq!(bars.len(), 14); // 7 apps x 2 machines
    for pair in bars.chunks(2) {
        let std_total: f64 = pair[0].parts.iter().sum();
        assert!(
            (std_total - 1.0).abs() < 0.05,
            "{}: standard bar sums to {std_total}",
            pair[0].app
        );
        assert_eq!(pair[0].machine, "standard");
        assert_eq!(pair[1].machine, "nwcache");
    }
}

#[test]
fn minfree_sweep_returns_all_points() {
    let rows = nwcache::experiments::minfree_sweep(
        AppId::Sor,
        MachineKind::NwCache,
        PrefetchMode::Naive,
        &[2, 4, 8],
        0.05,
    );
    assert_eq!(rows.len(), 3);
    assert!(rows.iter().all(|&(_, t)| t > 0));
}

#[test]
fn diskcache_sweep_monotone_trend() {
    // Larger standard-machine controller caches must not hurt.
    let (rows, nwc_ref) = nwcache::experiments::diskcache_sweep(
        AppId::Sor,
        PrefetchMode::Optimal,
        &[4, 64],
        SCALE,
    );
    assert!(nwc_ref > 0);
    assert!(
        rows[1].1 <= rows[0].1,
        "64-page cache ({}) should beat 4-page ({})",
        rows[1].1,
        rows[0].1
    );
}
