//! Policy-conformance suite for the pluggable prefetch layer.
//!
//! The refactor contract: turning the optimal/naive prefetch modes
//! into `PrefetchPolicy` implementations must be invisible — the
//! golden `RunSummary` snapshots below were captured BEFORE the
//! refactor, so any timing or counter drift in the refactored
//! policies fails the suite. The adaptive policy is pinned by its own
//! snapshots plus behavioural bounds: on a pure-sequential scenario
//! it must recover at least 90% of the optimal hit rate and close at
//! least half of the optimal-vs-naive execution-time gap, while never
//! exceeding its in-flight speculation cap.
//!
//! If a FUTURE PR intentionally changes the timing model, regenerate
//! the constants with:
//!
//! ```text
//! cargo test -p nw-integration --release print_prefetch_golden -- --ignored --nocapture
//! ```

use nw_workload::Scenario;
use nwcache::config::{MachineConfig, MachineKind, PrefetchMode};
use nwcache::workload::{try_run_sel, AppSel};
use std::sync::Arc;

const SCALE: f64 = 0.1;

/// The pinned scenario: a pure sequential sweep over a working set
/// far larger than memory, so nearly every access faults and the
/// miss stream seen by each disk is an interleaving of per-node
/// sequential runs — the best case for prefetching and the cell
/// where the optimal-vs-naive gap is widest.
const SEQ_SPEC: &str = "seq,ws=256,acc=3000,wf=0.1";

fn sel() -> AppSel {
    AppSel::Gen(Arc::new(Scenario::parse(SEQ_SPEC).expect("spec")))
}

fn cell(prefetch: PrefetchMode) -> MachineConfig {
    MachineConfig::scaled_paper(MachineKind::NwCache, prefetch, SCALE)
}

fn faulted(prefetch: PrefetchMode) -> MachineConfig {
    // Same fault plan as the hotpath and workload goldens, so every
    // golden suite pins the same failure paths.
    let mut cfg = cell(prefetch);
    cfg.faults.disk_error_rate = 0.05;
    cfg.faults.disk_stuck_rate = 0.01;
    cfg.faults.mesh_drop_rate = 0.02;
    cfg.faults.mesh_corrupt_rate = 0.01;
    cfg.faults.ring_channel_failures = vec![(40_000_000, 1)];
    cfg
}

// ---- pre-refactor conformance goldens --------------------------------------

const GOLDEN_OPTIMAL_CLEAN: &str = include_str!("golden/clean_prefetch_optimal_01.json");
const GOLDEN_OPTIMAL_FAULTED: &str = include_str!("golden/faulted_prefetch_optimal_01.json");
const GOLDEN_NAIVE_CLEAN: &str = include_str!("golden/clean_prefetch_naive_01.json");
const GOLDEN_NAIVE_FAULTED: &str = include_str!("golden/faulted_prefetch_naive_01.json");
const GOLDEN_ADAPTIVE_CLEAN: &str = include_str!("golden/clean_prefetch_adaptive_01.json");
const GOLDEN_ADAPTIVE_FAULTED: &str = include_str!("golden/faulted_prefetch_adaptive_01.json");

#[test]
fn optimal_policy_is_bit_identical_to_pre_refactor_run() {
    let m = try_run_sel(&cell(PrefetchMode::Optimal), &sel()).expect("clean run");
    assert_eq!(
        m.summary().to_json().trim(),
        GOLDEN_OPTIMAL_CLEAN.trim(),
        "optimal policy drifted from the pre-refactor snapshot"
    );
}

#[test]
fn optimal_policy_is_bit_identical_under_faults() {
    let m = try_run_sel(&faulted(PrefetchMode::Optimal), &sel()).expect("faulted run");
    assert_eq!(
        m.summary().to_json().trim(),
        GOLDEN_OPTIMAL_FAULTED.trim(),
        "optimal policy (faulted) drifted from the pre-refactor snapshot"
    );
    assert!(m.disk_media_errors > 0, "no media errors in golden cell");
}

#[test]
fn naive_policy_is_bit_identical_to_pre_refactor_run() {
    let m = try_run_sel(&cell(PrefetchMode::Naive), &sel()).expect("clean run");
    assert_eq!(
        m.summary().to_json().trim(),
        GOLDEN_NAIVE_CLEAN.trim(),
        "naive policy drifted from the pre-refactor snapshot"
    );
}

#[test]
fn naive_policy_is_bit_identical_under_faults() {
    let m = try_run_sel(&faulted(PrefetchMode::Naive), &sel()).expect("faulted run");
    assert_eq!(
        m.summary().to_json().trim(),
        GOLDEN_NAIVE_FAULTED.trim(),
        "naive policy (faulted) drifted from the pre-refactor snapshot"
    );
    assert!(m.disk_media_errors > 0, "no media errors in golden cell");
}

// ---- adaptive policy: pinned snapshots + behavioural bounds ----------------

#[test]
fn adaptive_policy_run_is_pinned() {
    let m = try_run_sel(&cell(PrefetchMode::Adaptive), &sel()).expect("clean run");
    assert_eq!(
        m.summary().to_json().trim(),
        GOLDEN_ADAPTIVE_CLEAN.trim(),
        "adaptive policy drifted from its pinned snapshot"
    );
}

#[test]
fn adaptive_policy_run_is_pinned_under_faults() {
    let m = try_run_sel(&faulted(PrefetchMode::Adaptive), &sel()).expect("faulted run");
    assert_eq!(
        m.summary().to_json().trim(),
        GOLDEN_ADAPTIVE_FAULTED.trim(),
        "adaptive policy (faulted) drifted from its pinned snapshot"
    );
    assert!(m.disk_media_errors > 0, "no media errors in golden cell");
}

/// The headline conformance bound: from the demand-miss stream alone
/// the detector must recover at least 90% of the oracle's disk-cache
/// hit rate on the pure-sequential cell.
#[test]
fn adaptive_recovers_90pct_of_optimal_hit_rate_on_sequential() {
    let opt = try_run_sel(&cell(PrefetchMode::Optimal), &sel()).expect("optimal");
    let ada = try_run_sel(&cell(PrefetchMode::Adaptive), &sel()).expect("adaptive");
    let rate = |h: u64, m: u64| h as f64 / (h + m).max(1) as f64;
    let opt_rate = rate(opt.disk_read_hits, opt.disk_read_misses);
    let ada_rate = rate(ada.disk_read_hits, ada.disk_read_misses);
    assert!(
        ada_rate >= 0.9 * opt_rate,
        "adaptive hit rate {ada_rate:.3} below 90% of optimal's {opt_rate:.3}"
    );
    assert!(
        ada.prefetch_spec_hits > 0,
        "hits must come from consumed speculation, not luck"
    );
}

/// The paper expects realistic prefetching "to lie between these two
/// extremes"; the adaptive policy must land in the better half: it
/// closes at least 50% of the optimal-vs-naive execution-time gap.
#[test]
fn adaptive_closes_at_least_half_the_optimal_naive_gap() {
    let opt = try_run_sel(&cell(PrefetchMode::Optimal), &sel()).expect("optimal");
    let naive = try_run_sel(&cell(PrefetchMode::Naive), &sel()).expect("naive");
    let ada = try_run_sel(&cell(PrefetchMode::Adaptive), &sel()).expect("adaptive");
    assert!(
        naive.exec_time > opt.exec_time,
        "cell no longer separates the extremes"
    );
    let midpoint = opt.exec_time + (naive.exec_time - opt.exec_time) / 2;
    assert!(
        ada.exec_time <= midpoint,
        "adaptive exec {} above the gap midpoint {midpoint} \
         (optimal {}, naive {})",
        ada.exec_time,
        opt.exec_time,
        naive.exec_time
    );
}

/// Speculation stays bounded: the per-node in-flight peak never
/// exceeds the cap implied by the detector window, in clean and
/// faulted runs alike (mesh drops must release their slots).
#[test]
fn adaptive_speculation_never_exceeds_inflight_cap() {
    for cfg in [cell(PrefetchMode::Adaptive), faulted(PrefetchMode::Adaptive)] {
        let cap = nwcache::prefetch::speculation_cap(cfg.prefetch_window) as u64;
        let m = try_run_sel(&cfg, &sel()).expect("run");
        assert!(m.prefetch_spec_issued > 0, "cell must actually speculate");
        assert!(
            (1..=cap).contains(&m.prefetch_inflight_peak),
            "inflight peak {} outside (0, cap {cap}]",
            m.prefetch_inflight_peak
        );
        // Every issued hint is accounted for: consumed by a demand
        // read, wasted, or retracted (the remainder was still live at
        // exit).
        assert!(
            m.prefetch_spec_hits + m.prefetch_spec_wasted + m.prefetch_spec_canceled
                <= m.prefetch_spec_issued,
            "hint accounting overflows issues"
        );
    }
}

/// The non-speculating policies must not touch the speculation
/// machinery at all — their counters stay zero (part of the
/// bit-identity contract, but cheaper to diagnose from counters).
#[test]
fn non_speculating_policies_issue_no_hints() {
    for mode in [PrefetchMode::Optimal, PrefetchMode::Naive] {
        let m = try_run_sel(&cell(mode), &sel()).expect("run");
        assert_eq!(m.prefetch_spec_issued, 0);
        assert_eq!(m.prefetch_spec_hits, 0);
        assert_eq!(m.prefetch_inflight_peak, 0);
    }
}

/// Regenerates the snapshot constants. Ignored by default; run with
/// `--ignored --nocapture` and paste the output into the files under
/// `tests/tests/golden/`.
#[test]
#[ignore]
fn print_prefetch_golden() {
    for (mode, name) in [
        (PrefetchMode::Optimal, "optimal"),
        (PrefetchMode::Naive, "naive"),
        (PrefetchMode::Adaptive, "adaptive"),
    ] {
        let clean = try_run_sel(&cell(mode), &sel()).expect("clean run");
        println!("=== clean_prefetch_{name}_01.json ===");
        println!("{}", clean.summary().to_json());
        let f = try_run_sel(&faulted(mode), &sel()).expect("faulted run");
        println!("=== faulted_prefetch_{name}_01.json ===");
        println!("{}", f.summary().to_json());
    }
}
