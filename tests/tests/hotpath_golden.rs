//! Golden `RunMetrics` snapshots pinning the hot-path data layout.
//!
//! `golden.rs` deliberately pins *relationships* (machine A beats
//! machine B) so it survives intentional model changes. This file is
//! the opposite: it pins the exact serialized `RunSummary` of two grid
//! cells — one clean, one fault-injected — captured **before** the
//! PR 3 data-layout refactor (open-addressing directory, indexed ring
//! slot set, flattened cache ways). The refactor's contract is
//! bit-identical behavior, so any drift in any field is a bug here,
//! not a model change.
//!
//! If a FUTURE PR intentionally changes the timing model, regenerate
//! the constants with:
//!
//! ```text
//! cargo test -p nw-integration --release print_golden -- --ignored --nocapture
//! ```

use nw_apps::AppId;
use nwcache::config::{MachineConfig, MachineKind, PrefetchMode};
use nwcache::run_app;

const SCALE: f64 = 0.1;

fn clean_cell() -> MachineConfig {
    MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, SCALE)
}

fn faulted_cell() -> MachineConfig {
    // Exercise every fault path the layout refactor touches: disk
    // retries, stuck-request timeouts, mesh drops/corruption, and a
    // mid-run ring channel death (which walks the channel's whole
    // page set — the `fail_channel` iteration-order hazard).
    let mut cfg = clean_cell();
    cfg.faults.disk_error_rate = 0.05;
    cfg.faults.disk_stuck_rate = 0.01;
    cfg.faults.mesh_drop_rate = 0.02;
    cfg.faults.mesh_corrupt_rate = 0.01;
    cfg.faults.ring_channel_failures = vec![(40_000_000, 1)];
    cfg
}

/// `RunSummary::to_json()` of the clean cell, captured pre-refactor.
const GOLDEN_CLEAN: &str = include_str!("golden/clean_sor_nwcache_naive_01.json");

/// `RunSummary::to_json()` of the faulted cell, captured pre-refactor.
const GOLDEN_FAULTED: &str = include_str!("golden/faulted_sor_nwcache_naive_01.json");

#[test]
fn clean_cell_matches_pre_refactor_snapshot() {
    let m = run_app(&clean_cell(), AppId::Sor);
    assert_eq!(
        m.summary().to_json().trim(),
        GOLDEN_CLEAN.trim(),
        "clean-cell RunSummary drifted from the pre-refactor snapshot"
    );
}

#[test]
fn faulted_cell_matches_pre_refactor_snapshot() {
    let m = run_app(&faulted_cell(), AppId::Sor);
    let json = m.summary().to_json();
    assert_eq!(
        json.trim(),
        GOLDEN_FAULTED.trim(),
        "faulted-cell RunSummary drifted from the pre-refactor snapshot"
    );
    // The snapshot is only meaningful if the faults actually fired.
    assert!(m.disk_media_errors > 0, "no media errors in golden cell");
    assert!(m.ring_pages_lost > 0, "channel failure destroyed no pages");
}

/// Regenerates the snapshot constants. Ignored by default; run with
/// `--ignored --nocapture` and paste the output into the files under
/// `tests/tests/golden/`.
#[test]
#[ignore]
fn print_golden() {
    let clean = run_app(&clean_cell(), AppId::Sor);
    println!("=== clean_sor_nwcache_naive_01.json ===");
    println!("{}", clean.summary().to_json());
    let faulted = run_app(&faulted_cell(), AppId::Sor);
    println!("=== faulted_sor_nwcache_naive_01.json ===");
    println!("{}", faulted.summary().to_json());
}
