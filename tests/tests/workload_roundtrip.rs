//! Round-trip property tests for the workload engine.
//!
//! The engine's contract is that representation never changes
//! behavior: a scenario materialized directly, the same scenario
//! round-tripped through the `nwtrace-v1` text encoding, and the same
//! scenario round-tripped through the binary encoding must all replay
//! to a bit-identical `RunMetrics` — across seeds and under an active
//! fault plan. Likewise a recorded paper app must replay exactly as
//! the original, and a mixed selection grid must stay deterministic
//! at any worker count (the parallel arm's worker count comes from
//! `NWSIM_JOBS`, as in the CI matrix: unset => 4, `0` => per core).

use nw_apps::AppId;
use nw_workload::{Scenario, Trace};
use nwcache::config::{MachineConfig, MachineKind, PrefetchMode};
use nwcache::sweep::run_sel_grid;
use nwcache::workload::{record, try_run_sel, AppSel};
use std::sync::Arc;

const SCALE: f64 = 0.05;

/// A two-phase scenario exercising every generator feature: Zipf and
/// sequential patterns, both read- and write-heavy mixes, burst/idle
/// arrival, and multi-barrier phases.
const SPEC: &str =
    "zipf:1.0,ws=96,acc=1500,wf=0.5,bar=2;seq:2,ws=64,acc=800,wf=0.8,burst=64:20000";

fn cfg(seed: u64) -> MachineConfig {
    let mut c = MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, SCALE);
    c.seed = seed;
    c
}

fn faulted(seed: u64) -> MachineConfig {
    let mut c = cfg(seed);
    c.faults.disk_error_rate = 0.05;
    c.faults.disk_stuck_rate = 0.01;
    c.faults.mesh_drop_rate = 0.02;
    c.faults.mesh_corrupt_rate = 0.01;
    c
}

fn parallel_jobs() -> usize {
    match std::env::var("NWSIM_JOBS") {
        Ok(v) => match v.parse::<usize>().expect("NWSIM_JOBS must be an integer") {
            0 => nw_sim::pool::default_jobs(),
            n => n,
        },
        Err(_) => 4,
    }
}

/// Decode(encode(trace)) through both codecs, asserting losslessness
/// of the representations themselves before any simulation.
fn both_codecs(trace: &Trace) -> (Trace, Trace) {
    let text = Trace::decode(trace.encode_text().as_bytes()).expect("text decode");
    let bin = Trace::decode(&trace.encode_binary()).expect("binary decode");
    assert_eq!(&text, trace, "text codec is lossy");
    assert_eq!(&bin, trace, "binary codec is lossy");
    (text, bin)
}

#[test]
fn generated_replay_is_bit_identical_across_seeds() {
    let sc = Scenario::parse(SPEC).expect("spec");
    for seed in [1u64, 2, 3] {
        let c = cfg(seed);
        let direct = try_run_sel(&c, &AppSel::Gen(Arc::new(sc.clone()))).expect("direct");
        let trace = sc.to_trace(c.nodes as usize, c.seed);
        let (text, bin) = both_codecs(&trace);
        let via_text = try_run_sel(&c, &AppSel::Replay(Arc::new(text))).expect("text replay");
        let via_bin = try_run_sel(&c, &AppSel::Replay(Arc::new(bin))).expect("binary replay");
        // Full-state equality: every counter, histogram bucket, and
        // fault tally — not just the headline numbers.
        assert_eq!(direct, via_text, "seed {seed}: text round-trip diverged");
        assert_eq!(direct, via_bin, "seed {seed}: binary round-trip diverged");
    }
}

#[test]
fn generated_replay_survives_a_fault_plan() {
    let sc = Scenario::parse(SPEC).expect("spec");
    let c = faulted(11);
    let direct = try_run_sel(&c, &AppSel::Gen(Arc::new(sc.clone()))).expect("direct");
    // Faults actually fired, so the equality below is meaningful.
    assert!(
        direct.disk_media_errors > 0 || direct.mesh_dropped > 0,
        "fault plan was a no-op"
    );
    let trace = sc.to_trace(c.nodes as usize, c.seed);
    let (text, bin) = both_codecs(&trace);
    let via_text = try_run_sel(&c, &AppSel::Replay(Arc::new(text))).expect("text replay");
    let via_bin = try_run_sel(&c, &AppSel::Replay(Arc::new(bin))).expect("binary replay");
    assert_eq!(direct, via_text, "faulted text round-trip diverged");
    assert_eq!(direct, via_bin, "faulted binary round-trip diverged");
}

#[test]
fn recorded_paper_apps_replay_exactly() {
    for app in [AppId::Gauss, AppId::Mg] {
        let c = cfg(0x1999);
        let direct = nwcache::try_run_app(&c, app).expect("direct run");
        let trace = record(&c, &AppSel::Table(app)).expect("record");
        assert_eq!(trace.name, app.name());
        let (text, bin) = both_codecs(&trace);
        let via_text = try_run_sel(&c, &AppSel::Replay(Arc::new(text))).expect("text replay");
        let via_bin = try_run_sel(&c, &AppSel::Replay(Arc::new(bin))).expect("binary replay");
        assert_eq!(direct, via_text, "{}: text replay diverged", app.name());
        assert_eq!(direct, via_bin, "{}: binary replay diverged", app.name());
    }
}

#[test]
fn mixed_selection_grid_is_deterministic_at_any_job_count() {
    let sc = Arc::new(Scenario::parse(SPEC).expect("spec"));
    let trace = Arc::new(sc.to_trace(8, 1));
    let grid = || -> Vec<(MachineConfig, AppSel)> {
        vec![
            (cfg(1), AppSel::Table(AppId::Sor)),
            (cfg(1), AppSel::Gen(sc.clone())),
            (cfg(1), AppSel::Replay(trace.clone())),
            (faulted(1), AppSel::Gen(sc.clone())),
            (cfg(2), AppSel::Gen(sc.clone())),
        ]
    };
    let serial = run_sel_grid(1, grid());
    let parallel = run_sel_grid(parallel_jobs(), grid());
    assert_eq!(serial, parallel, "jobs={} diverged from serial", parallel_jobs());
    assert!(serial.iter().all(|r| r.is_ok()));
    // The Gen cell and the Replay cell of the same scenario+seed are
    // the same workload by construction.
    assert_eq!(serial[1], serial[2], "gen and replay of one scenario diverged");
}

#[test]
fn workload_validation_rejects_bad_dials_at_the_run_boundary() {
    // Satellite: Result-based validation of the new workload fields,
    // observed end-to-end as `SimError::BadConfig` rows rather than
    // panics.
    for bad in [
        "workload:gen:uniform,wf=1.5",   // write fraction out of [0,1]
        "workload:gen:uniform,wf=-0.1",  // negative write fraction
        "workload:gen:seq,ws=0",         // zero-page working set
        "workload:gen:zipf:-2,ws=16",    // negative skew
    ] {
        let sel = AppSel::parse(bad).expect("parses; rejected at validation");
        let err = try_run_sel(&cfg(1), &sel).expect_err(bad);
        assert!(
            matches!(err, nwcache::SimError::BadConfig(_)),
            "{bad}: wrong error {err}"
        );
    }
    // Malformed grammar and empty phase lists are rejected at parse.
    assert!(AppSel::parse("workload:gen:").is_err());
    assert!(AppSel::parse("workload:gen:lru,ws=4").is_err());
    // Unknown plain names list the registry and the workload syntax.
    let err = AppSel::parse("guass").expect_err("typo must not resolve");
    let msg = err.to_string();
    assert!(msg.contains("gauss") && msg.contains("workload:gen:<spec>"), "{msg}");
}
