//! Fault-injection integration tests: determinism of faulted runs,
//! invariance of clean runs, recovery-path coverage, and the
//! page-conservation property under randomized fault schedules.

use nw_apps::AppId;
use nw_sim::Pcg32;
use nwcache::config::{MachineConfig, MachineKind, PrefetchMode};
use nwcache::{run_app, try_run_app, SimError};

const SCALE: f64 = 0.1;

fn nwc_cfg() -> MachineConfig {
    MachineConfig::scaled_paper(MachineKind::NwCache, PrefetchMode::Naive, SCALE)
}

/// A fault mix that exercises every injector: disk errors and stuck
/// requests, mesh drops/corruption, and two mid-run channel failures.
/// Rates are far above anything realistic so a short scaled run still
/// triggers each path many times.
fn stress_plan(cfg: &mut MachineConfig) {
    cfg.faults.disk_error_rate = 0.05;
    cfg.faults.disk_stuck_rate = 0.02;
    cfg.faults.mesh_drop_rate = 0.02;
    cfg.faults.mesh_corrupt_rate = 0.01;
    // Sor at this scale runs ~286 Mpc clean; fail channels while the
    // ring carries load.
    cfg.faults.ring_channel_failures = vec![(70_000_000, 1), (140_000_000, 3)];
}

#[test]
fn faulted_runs_are_deterministic() {
    // Same seed + same fault plan twice => bit-identical metrics.
    let mut cfg = nwc_cfg();
    stress_plan(&mut cfg);
    let a = try_run_app(&cfg, AppId::Sor).expect("faulted run completes");
    let b = try_run_app(&cfg, AppId::Sor).expect("faulted run completes");
    assert_eq!(a.summary().to_json(), b.summary().to_json());
    // And the faults actually fired — this is not a vacuous replay.
    assert!(a.disk_media_errors > 0, "no media errors injected");
    assert!(a.disk_stuck_timeouts > 0, "no stuck requests injected");
    assert!(a.mesh_dropped > 0, "no mesh drops injected");
    assert!(a.dead_channels == 2, "both channel failures must fire");
}

#[test]
fn inactive_plan_is_invisible() {
    // A plan with all rates zero and no channel failures must leave
    // the run bit-identical to the default config, whatever its seed:
    // inactive injectors draw no randomness and schedule no events.
    let clean = run_app(&nwc_cfg(), AppId::Sor);
    let mut cfg = nwc_cfg();
    cfg.faults.seed = 0xDEAD_BEEF;
    cfg.faults.max_retries = 99;
    cfg.faults.request_timeout = 1;
    let inert = try_run_app(&cfg, AppId::Sor).expect("clean run");
    assert_eq!(clean.summary().to_json(), inert.summary().to_json());
    assert_eq!(inert.disk_media_errors, 0);
    assert_eq!(inert.ring_pages_lost, 0);
    assert_eq!(inert.swap_retries, 0);
}

#[test]
fn dead_channels_degrade_but_never_lose_pages() {
    // Channel failures slow the NWCache down (swap-outs fall back to
    // the standard path) but the run completes and no page vanishes —
    // try_run's conservation checker would return PageLost otherwise.
    let clean = run_app(&nwc_cfg(), AppId::Sor).exec_time;
    let std_exec = run_app(
        &MachineConfig::scaled_paper(MachineKind::Standard, PrefetchMode::Naive, SCALE),
        AppId::Sor,
    )
    .exec_time;
    let mut cfg = nwc_cfg();
    cfg.faults.ring_channel_failures = vec![(70_000_000, 1), (140_000_000, 3)];
    let m = try_run_app(&cfg, AppId::Sor).expect("degraded run completes");
    assert_eq!(m.dead_channels, 2);
    assert!(m.degraded_ring_swaps > 0, "no swap-outs took the fallback path");
    assert!(
        m.exec_time >= clean,
        "losing channels cannot speed the machine up: {} < {}",
        m.exec_time,
        clean
    );
    // Degrades *toward* the standard machine, not below it.
    assert!(
        m.exec_time < std_exec,
        "2 dead channels of 8 should not erase the whole NWCache win: {} >= {}",
        m.exec_time,
        std_exec
    );
}

#[test]
fn disk_errors_retry_and_complete() {
    // 5% per access is heavy but survivable: six consecutive failures
    // (what it takes to exhaust the default retry budget) has odds of
    // ~1.6e-8 per read. At 20% the budget genuinely exhausts.
    let clean = run_app(&nwc_cfg(), AppId::Sor).exec_time;
    let mut cfg = nwc_cfg();
    cfg.faults.disk_error_rate = 0.05;
    let m = try_run_app(&cfg, AppId::Sor).expect("retries recover every error");
    assert!(m.disk_media_errors > 0);
    assert!(
        m.exec_time >= clean,
        "retry backoff cannot speed the run up: {} < {clean}",
        m.exec_time
    );
}

#[test]
fn certain_failure_surfaces_as_error_not_panic() {
    // With every access failing, retries exhaust; the harness reports
    // a structured error instead of panicking or hanging.
    let mut cfg = nwc_cfg();
    cfg.faults.disk_error_rate = 1.0;
    cfg.faults.max_retries = 3;
    match try_run_app(&cfg, AppId::Sor) {
        Err(SimError::RetriesExhausted { kind, attempts, .. }) => {
            assert_eq!(kind, "disk-read");
            assert_eq!(attempts, 4);
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

#[test]
fn no_page_lost_under_random_fault_schedules() {
    // Property: for randomized (but seeded) fault schedules, every
    // run either completes with pages conserved or fails with a
    // structured retry-exhaustion error — never a panic, a deadlock,
    // or a silently lost page. try_run checks frame conservation
    // periodically and at completion.
    let mut rng = Pcg32::new(0x5EED_F417, 0);
    for case in 0..8 {
        let mut cfg = MachineConfig::scaled_paper(
            MachineKind::NwCache,
            PrefetchMode::Naive,
            0.05,
        );
        cfg.faults.seed = rng.next_u64();
        cfg.faults.disk_error_rate = rng.gen_f64() * 0.1;
        cfg.faults.disk_stuck_rate = rng.gen_f64() * 0.05;
        cfg.faults.mesh_drop_rate = rng.gen_f64() * 0.05;
        cfg.faults.mesh_corrupt_rate = rng.gen_f64() * 0.02;
        let failures = rng.gen_below(3) as usize;
        cfg.faults.ring_channel_failures = (0..failures)
            .map(|_| {
                (
                    rng.gen_range(1_000_000, 120_000_000),
                    rng.gen_below(8),
                )
            })
            .collect();
        match try_run_app(&cfg, AppId::Sor) {
            Ok(m) => {
                // Whatever was destroyed on the ring was re-issued.
                assert!(
                    m.ring_pages_lost == 0 || m.swap_retries >= m.ring_pages_lost,
                    "case {case}: lost {} pages but only {} retries",
                    m.ring_pages_lost,
                    m.swap_retries
                );
            }
            Err(SimError::RetriesExhausted { .. }) => {} // legitimate under heavy rates
            Err(e) => panic!("case {case}: unexpected failure {e}"),
        }
    }
}
